"""The write-ahead journal of the repair control plane.

:class:`Journal` makes the coordinator's in-memory scheduling state —
batches, in-flight plans, retry outcomes, losses — durable against a
*control-plane* crash: :class:`repro.repair.runner.RepairRunner` and
:class:`repro.core.chameleon.ChameleonRepair` write through it at every
state transition, so a recovering coordinator can replay the log and
resume with exactly-once semantics (see :mod:`repro.journal.recovery`).

Design notes:

* **Virtual-time WAL.** Records are stamped with the simulator clock;
  appending consumes no virtual time (a real deployment would batch
  fsyncs — the simulated repair timeline is the journal-off timeline).
* **Epoch fencing + leases.** Each coordinator incarnation opens an
  epoch; every ``plan_chosen`` record carries a lease. Recovery first
  fences the dead epoch (a ``coordinator_crash`` record), which voids
  its leases; leases also lapse on their own after ``lease_duration``
  virtual seconds, covering the no-failure-detector case.
* **Zombie write rejection.** A coordinator that is isolated (not
  crashed) by a network partition keeps running; if its shard is
  fenced while it is away, its write-throughs must not land after the
  partition heals. :class:`JournalShard` captures its incarnation
  epoch at ``coordinator_started()`` and stamps every subsequent
  write; the journal drops writes whose epoch is older than the
  shard's issued epoch, or equal but fenced, counting them in
  :attr:`Journal.fenced_writes` (``journal.fenced_writes`` counter).
  Raw unsharded writes carry no epoch and are never rejected — the
  pre-partition surface is unchanged.
* **Compacting checkpoints.** ``checkpoint()`` snapshots the folded
  state and drops every earlier record, bounding replay work; with
  ``checkpoint_interval`` set the journal checkpoints itself every N
  appends.
* **Durability escape hatch.** ``to_json()``/``from_json()`` round-trip
  the full log (or its compacted tail), standing in for the on-disk /
  replicated store a production coordinator would use.
"""

from __future__ import annotations

import json

from repro.cluster.stripes import ChunkId
from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.journal.records import (
    ATTEMPT_FAILED,
    CHECKPOINT,
    COMMITTED,
    COORDINATOR_CRASH,
    COORDINATOR_START,
    DECODE_VERIFIED,
    ENQUEUED,
    LOST,
    PLAN_CHOSEN,
    READS_ISSUED,
    JournalRecord,
    JournalState,
)


class Journal:
    """Append-only, replayable log of repair control-plane transitions."""

    def __init__(
        self,
        sim=None,
        *,
        lease_duration: float = 60.0,
        checkpoint_interval: int | None = None,
    ) -> None:
        if lease_duration <= 0:
            raise SimulationError("lease_duration must be positive")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise SimulationError("checkpoint_interval must be >= 1 (or None)")
        self.sim = sim
        self.lease_duration = lease_duration
        self.checkpoint_interval = checkpoint_interval
        self.records: list[JournalRecord] = []
        #: Live fold of the record sequence (what replay would rebuild).
        self.state = JournalState()
        #: Issued epoch counters, one per shard (partition) of the log.
        self.epochs: dict[int, int] = {}
        #: Records dropped by compaction (they live on inside the last
        #: checkpoint's snapshot).
        self.compacted_records = 0
        #: Write-throughs rejected because their incarnation epoch was
        #: stale or fenced (a zombie coordinator wrote after heal).
        self.fenced_writes = 0
        self._seq = 0
        self._since_checkpoint = 0

    # -- per-shard epoch surface ----------------------------------------------

    @property
    def epoch(self) -> int:
        """Shard 0's issued epoch (the whole journal's, when unsharded)."""
        return self.epochs.get(0, 0)

    @epoch.setter
    def epoch(self, value: int) -> None:
        self.epochs[0] = value

    def epoch_of(self, shard: int) -> int:
        return self.epochs.get(shard, 0)

    # -- clock ----------------------------------------------------------------

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    # -- zombie fencing -------------------------------------------------------

    def _reject_stale(self, kind: str, shard: int, epoch: int | None) -> bool:
        """True when a write from a fenced/stale incarnation must drop.

        ``epoch`` is the writer's captured incarnation epoch (None =
        epoch-unaware caller, never rejected). A write is stale when a
        newer incarnation already opened the shard, or the writer's own
        epoch was fenced — either way the writer is a zombie and its
        scheduling decisions must not reach the durable log.
        """
        if epoch is None:
            return False
        current = self.epoch_of(shard)
        if epoch > current or (epoch == current and not self.state.fenced_of(shard)):
            return False
        self.fenced_writes += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("journal.fenced_writes").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "journal.fenced_write",
                track="journal",
                kind=kind,
                shard=shard,
                epoch=epoch,
                current=current,
            )
        return True

    # -- the append path ------------------------------------------------------

    def append(
        self, kind: str, chunk: ChunkId | None = None, *, shard: int = 0, **payload
    ) -> JournalRecord:
        """Append one record, fold it into the state, maybe checkpoint."""
        record = JournalRecord(
            seq=self._seq,
            at=self._now(),
            kind=kind,
            chunk=chunk,
            payload=payload,
            shard=shard,
        )
        self._seq += 1
        self.records.append(record)
        self.state.apply(record)
        registry = get_registry()
        if registry.enabled:
            registry.counter("journal.appends").inc()
            registry.counter(f"journal.records.{kind}").inc()
        if kind != CHECKPOINT:
            self._since_checkpoint += 1
            if (
                self.checkpoint_interval is not None
                and self._since_checkpoint >= self.checkpoint_interval
            ):
                self.checkpoint()
        return record

    # -- write-through API (called by the repairers) ---------------------------

    def coordinator_started(self, *, shard: int = 0) -> int:
        """Open a new coordinator epoch on ``shard``; voids its older leases."""
        self.epochs[shard] = self.epoch_of(shard) + 1
        self.append(COORDINATOR_START, shard=shard, epoch=self.epochs[shard])
        return self.epochs[shard]

    def fence(self, *, shard: int = 0) -> None:
        """Record one shard's incarnation death (voids its leases).

        Written by whoever *observes* the crash — the fault timeline's
        handler or a recovering coordinator — never by the dead process.
        Idempotent per epoch. Sibling shards' epochs and leases are
        untouched: fencing is the blast-radius boundary.
        """
        if self.state.fenced_of(shard):
            return
        self.append(COORDINATOR_CRASH, shard=shard, epoch=self.epoch_of(shard))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "journal.fence",
                track="journal",
                epoch=self.epoch_of(shard),
                shard=shard,
            )

    def chunk_enqueued(
        self, chunk: ChunkId, *, shard: int = 0, epoch: int | None = None
    ) -> None:
        if self._reject_stale(ENQUEUED, shard, epoch):
            return
        self.append(ENQUEUED, chunk, shard=shard)

    def plan_chosen(
        self,
        chunk: ChunkId,
        *,
        destination: int,
        sources: list[int],
        attempt: int,
        shard: int = 0,
        epoch: int | None = None,
    ) -> None:
        if self._reject_stale(PLAN_CHOSEN, shard, epoch):
            return
        self.append(
            PLAN_CHOSEN,
            chunk,
            shard=shard,
            destination=destination,
            sources=list(sources),
            attempt=attempt,
            lease_expires=self._now() + self.lease_duration,
        )

    def reads_issued(
        self, chunk: ChunkId, *, transfers: int, shard: int = 0,
        epoch: int | None = None,
    ) -> None:
        if self._reject_stale(READS_ISSUED, shard, epoch):
            return
        self.append(READS_ISSUED, chunk, shard=shard, transfers=transfers)

    def attempt_failed(
        self, chunk: ChunkId, reason: str, *, shard: int = 0,
        epoch: int | None = None,
    ) -> None:
        if self._reject_stale(ATTEMPT_FAILED, shard, epoch):
            return
        self.append(ATTEMPT_FAILED, chunk, shard=shard, reason=reason)

    def decode_verified(
        self, chunk: ChunkId, *, shard: int = 0, epoch: int | None = None
    ) -> None:
        if self._reject_stale(DECODE_VERIFIED, shard, epoch):
            return
        self.append(DECODE_VERIFIED, chunk, shard=shard)

    def writeback_committed(
        self, chunk: ChunkId, *, shard: int = 0, epoch: int | None = None
    ) -> None:
        if self._reject_stale(COMMITTED, shard, epoch):
            return
        self.append(COMMITTED, chunk, shard=shard)

    def chunk_lost(
        self, chunk: ChunkId, *, shard: int = 0, epoch: int | None = None
    ) -> None:
        if self._reject_stale(LOST, shard, epoch):
            return
        self.append(LOST, chunk, shard=shard)

    # -- shard views -----------------------------------------------------------

    def shard_view(self, shard: int) -> "JournalShard":
        """A write-through view bound to one partition of this log.

        Handing ``shard_view(s)`` to a repairer makes every record it
        writes land on shard ``s`` without the repairer knowing shards
        exist — the proxy pre-binds the shard id on the full
        write-through surface.
        """
        return JournalShard(self, shard)

    # -- checkpoints & compaction ----------------------------------------------

    def checkpoint(self) -> JournalRecord:
        """Snapshot the folded state and drop every earlier record."""
        record = self.append(CHECKPOINT, state=self.state.snapshot())
        dropped = len(self.records) - 1
        self.records = [record]
        self.compacted_records += dropped
        self._since_checkpoint = 0
        registry = get_registry()
        if registry.enabled:
            registry.counter("journal.checkpoints").inc()
            registry.counter("journal.records_compacted").inc(dropped)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "journal.checkpoint",
                track="journal",
                compacted=dropped,
                live=len(self.records),
            )
        return record

    # -- recovery -------------------------------------------------------------

    def replay(self) -> JournalState:
        """Rebuild the state by folding the (compacted) record sequence.

        This is exactly what a freshly started coordinator reading the
        durable log would compute; the result is independent of the live
        :attr:`state` object (a unit-testable determinism invariant).
        """
        state = JournalState()
        for record in self.records:
            state.apply(record)
        registry = get_registry()
        if registry.enabled:
            registry.counter("journal.recovery.replays").inc()
            registry.counter("journal.recovery.replayed_records").inc(
                len(self.records)
            )
        return state

    # -- durability round-trip -------------------------------------------------

    def to_json(self) -> str:
        """Serialise the journal (records + cursor) to JSON.

        ``shard_epochs`` (non-zero shards' issued-epoch counters) is
        emitted only when sharding was used, so unsharded journals keep
        the pre-sharding byte format.
        """
        doc = {
            "lease_duration": self.lease_duration,
            "checkpoint_interval": self.checkpoint_interval,
            "epoch": self.epoch,
            "seq": self._seq,
            "compacted_records": self.compacted_records,
            "records": [r.to_dict() for r in self.records],
        }
        shard_epochs = {
            str(shard): epoch
            for shard, epoch in sorted(self.epochs.items())
            if shard != 0
        }
        if shard_epochs:
            doc["shard_epochs"] = shard_epochs
        return json.dumps(doc)

    @classmethod
    def from_json(cls, text: str, sim=None) -> "Journal":
        """Rebuild a journal (and its folded state) from :meth:`to_json`."""
        data = json.loads(text)
        journal = cls(
            sim,
            lease_duration=data["lease_duration"],
            checkpoint_interval=data["checkpoint_interval"],
        )
        journal.epoch = data["epoch"]
        for shard, epoch in data.get("shard_epochs", {}).items():
            journal.epochs[int(shard)] = epoch
        journal._seq = data["seq"]
        journal.compacted_records = data["compacted_records"]
        journal.records = [JournalRecord.from_dict(r) for r in data["records"]]
        for record in journal.records:
            journal.state.apply(record)
        return journal

    def __len__(self) -> int:
        """Records currently held (post-compaction)."""
        return len(self.records)


class JournalShard:
    """One partition of a :class:`Journal`, as seen by its coordinator.

    Exposes the journal's write-through surface with the shard id
    pre-bound, so a repairer built against the unsharded `Journal` API
    works against a partition unmodified. All shards append to the one
    shared log; only the epoch/fence/lease bookkeeping is partitioned.

    The view also captures its *incarnation epoch* when the repairer
    calls :meth:`coordinator_started`, stamping every later write with
    it — the journal rejects writes from fenced/stale incarnations, so
    a zombie coordinator (isolated by a partition, fenced while away)
    cannot corrupt the log after the partition heals.
    """

    __slots__ = ("journal", "shard", "incarnation")

    def __init__(self, journal: Journal, shard: int) -> None:
        if shard < 0:
            raise SimulationError("shard id must be >= 0")
        self.journal = journal
        self.shard = shard
        #: Epoch this view's coordinator opened (None until started;
        #: None-epoch writes bypass the zombie check, preserving the
        #: pre-partition surface for views that never start).
        self.incarnation: int | None = None

    # The repairers read these for bookkeeping / invariant checks.

    @property
    def state(self) -> JournalState:
        return self.journal.state

    @property
    def epoch(self) -> int:
        return self.journal.epoch_of(self.shard)

    @property
    def lease_duration(self) -> float:
        return self.journal.lease_duration

    # Write-through surface, shard pre-bound.

    def coordinator_started(self) -> int:
        self.incarnation = self.journal.coordinator_started(shard=self.shard)
        return self.incarnation

    def fence(self) -> None:
        self.journal.fence(shard=self.shard)

    def chunk_enqueued(self, chunk: ChunkId) -> None:
        self.journal.chunk_enqueued(
            chunk, shard=self.shard, epoch=self.incarnation
        )

    def plan_chosen(
        self, chunk: ChunkId, *, destination: int, sources: list[int], attempt: int
    ) -> None:
        self.journal.plan_chosen(
            chunk,
            destination=destination,
            sources=sources,
            attempt=attempt,
            shard=self.shard,
            epoch=self.incarnation,
        )

    def reads_issued(self, chunk: ChunkId, *, transfers: int) -> None:
        self.journal.reads_issued(
            chunk, transfers=transfers, shard=self.shard, epoch=self.incarnation
        )

    def attempt_failed(self, chunk: ChunkId, reason: str) -> None:
        self.journal.attempt_failed(
            chunk, reason, shard=self.shard, epoch=self.incarnation
        )

    def decode_verified(self, chunk: ChunkId) -> None:
        self.journal.decode_verified(
            chunk, shard=self.shard, epoch=self.incarnation
        )

    def writeback_committed(self, chunk: ChunkId) -> None:
        self.journal.writeback_committed(
            chunk, shard=self.shard, epoch=self.incarnation
        )

    def chunk_lost(self, chunk: ChunkId) -> None:
        self.journal.chunk_lost(
            chunk, shard=self.shard, epoch=self.incarnation
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JournalShard(shard={self.shard}, journal={self.journal!r})"


def audit_fenced_writes(journal: Journal) -> list[JournalRecord]:
    """Chunk records that landed while their shard was fenced.

    Replays the (compacted) log through a fresh :class:`JournalState`
    and flags every chunk-carrying record appended between a shard's
    ``coordinator_crash`` and its next ``coordinator_start`` — exactly
    the window in which only a zombie could have written. With zombie
    rejection working, the result is always empty; experiments assert
    that as the "zero accepted stale writes" invariant.
    """
    state = JournalState()
    violations: list[JournalRecord] = []
    for record in journal.records:
        if record.chunk is not None and state.fenced_of(record.shard):
            violations.append(record)
        state.apply(record)
    return violations
