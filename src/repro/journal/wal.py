"""The write-ahead journal of the repair control plane.

:class:`Journal` makes the coordinator's in-memory scheduling state —
batches, in-flight plans, retry outcomes, losses — durable against a
*control-plane* crash: :class:`repro.repair.runner.RepairRunner` and
:class:`repro.core.chameleon.ChameleonRepair` write through it at every
state transition, so a recovering coordinator can replay the log and
resume with exactly-once semantics (see :mod:`repro.journal.recovery`).

Design notes:

* **Virtual-time WAL.** Records are stamped with the simulator clock;
  appending consumes no virtual time (a real deployment would batch
  fsyncs — the simulated repair timeline is the journal-off timeline).
* **Epoch fencing + leases.** Each coordinator incarnation opens an
  epoch; every ``plan_chosen`` record carries a lease. Recovery first
  fences the dead epoch (a ``coordinator_crash`` record), which voids
  its leases; leases also lapse on their own after ``lease_duration``
  virtual seconds, covering the no-failure-detector case.
* **Compacting checkpoints.** ``checkpoint()`` snapshots the folded
  state and drops every earlier record, bounding replay work; with
  ``checkpoint_interval`` set the journal checkpoints itself every N
  appends.
* **Durability escape hatch.** ``to_json()``/``from_json()`` round-trip
  the full log (or its compacted tail), standing in for the on-disk /
  replicated store a production coordinator would use.
"""

from __future__ import annotations

import json

from repro.cluster.stripes import ChunkId
from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.journal.records import (
    ATTEMPT_FAILED,
    CHECKPOINT,
    COMMITTED,
    COORDINATOR_CRASH,
    COORDINATOR_START,
    DECODE_VERIFIED,
    ENQUEUED,
    LOST,
    PLAN_CHOSEN,
    READS_ISSUED,
    JournalRecord,
    JournalState,
)


class Journal:
    """Append-only, replayable log of repair control-plane transitions."""

    def __init__(
        self,
        sim=None,
        *,
        lease_duration: float = 60.0,
        checkpoint_interval: int | None = None,
    ) -> None:
        if lease_duration <= 0:
            raise SimulationError("lease_duration must be positive")
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise SimulationError("checkpoint_interval must be >= 1 (or None)")
        self.sim = sim
        self.lease_duration = lease_duration
        self.checkpoint_interval = checkpoint_interval
        self.records: list[JournalRecord] = []
        #: Live fold of the record sequence (what replay would rebuild).
        self.state = JournalState()
        self.epoch = 0
        #: Records dropped by compaction (they live on inside the last
        #: checkpoint's snapshot).
        self.compacted_records = 0
        self._seq = 0
        self._since_checkpoint = 0

    # -- clock ----------------------------------------------------------------

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    # -- the append path ------------------------------------------------------

    def append(
        self, kind: str, chunk: ChunkId | None = None, **payload
    ) -> JournalRecord:
        """Append one record, fold it into the state, maybe checkpoint."""
        record = JournalRecord(
            seq=self._seq, at=self._now(), kind=kind, chunk=chunk, payload=payload
        )
        self._seq += 1
        self.records.append(record)
        self.state.apply(record)
        registry = get_registry()
        if registry.enabled:
            registry.counter("journal.appends").inc()
            registry.counter(f"journal.records.{kind}").inc()
        if kind != CHECKPOINT:
            self._since_checkpoint += 1
            if (
                self.checkpoint_interval is not None
                and self._since_checkpoint >= self.checkpoint_interval
            ):
                self.checkpoint()
        return record

    # -- write-through API (called by the repairers) ---------------------------

    def coordinator_started(self) -> int:
        """Open a new coordinator epoch; voids every older lease."""
        self.epoch += 1
        self.append(COORDINATOR_START, epoch=self.epoch)
        return self.epoch

    def fence(self) -> None:
        """Record the current incarnation's death (voids its leases).

        Written by whoever *observes* the crash — the fault timeline's
        handler or a recovering coordinator — never by the dead process.
        Idempotent per epoch.
        """
        if self.state.fenced:
            return
        self.append(COORDINATOR_CRASH, epoch=self.epoch)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant("journal.fence", track="journal", epoch=self.epoch)

    def chunk_enqueued(self, chunk: ChunkId) -> None:
        self.append(ENQUEUED, chunk)

    def plan_chosen(
        self, chunk: ChunkId, *, destination: int, sources: list[int], attempt: int
    ) -> None:
        self.append(
            PLAN_CHOSEN,
            chunk,
            destination=destination,
            sources=list(sources),
            attempt=attempt,
            lease_expires=self._now() + self.lease_duration,
        )

    def reads_issued(self, chunk: ChunkId, *, transfers: int) -> None:
        self.append(READS_ISSUED, chunk, transfers=transfers)

    def attempt_failed(self, chunk: ChunkId, reason: str) -> None:
        self.append(ATTEMPT_FAILED, chunk, reason=reason)

    def decode_verified(self, chunk: ChunkId) -> None:
        self.append(DECODE_VERIFIED, chunk)

    def writeback_committed(self, chunk: ChunkId) -> None:
        self.append(COMMITTED, chunk)

    def chunk_lost(self, chunk: ChunkId) -> None:
        self.append(LOST, chunk)

    # -- checkpoints & compaction ----------------------------------------------

    def checkpoint(self) -> JournalRecord:
        """Snapshot the folded state and drop every earlier record."""
        record = self.append(CHECKPOINT, state=self.state.snapshot())
        dropped = len(self.records) - 1
        self.records = [record]
        self.compacted_records += dropped
        self._since_checkpoint = 0
        registry = get_registry()
        if registry.enabled:
            registry.counter("journal.checkpoints").inc()
            registry.counter("journal.records_compacted").inc(dropped)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "journal.checkpoint",
                track="journal",
                compacted=dropped,
                live=len(self.records),
            )
        return record

    # -- recovery -------------------------------------------------------------

    def replay(self) -> JournalState:
        """Rebuild the state by folding the (compacted) record sequence.

        This is exactly what a freshly started coordinator reading the
        durable log would compute; the result is independent of the live
        :attr:`state` object (a unit-testable determinism invariant).
        """
        state = JournalState()
        for record in self.records:
            state.apply(record)
        registry = get_registry()
        if registry.enabled:
            registry.counter("journal.recovery.replays").inc()
            registry.counter("journal.recovery.replayed_records").inc(
                len(self.records)
            )
        return state

    # -- durability round-trip -------------------------------------------------

    def to_json(self) -> str:
        """Serialise the journal (records + cursor) to JSON."""
        return json.dumps(
            {
                "lease_duration": self.lease_duration,
                "checkpoint_interval": self.checkpoint_interval,
                "epoch": self.epoch,
                "seq": self._seq,
                "compacted_records": self.compacted_records,
                "records": [r.to_dict() for r in self.records],
            }
        )

    @classmethod
    def from_json(cls, text: str, sim=None) -> "Journal":
        """Rebuild a journal (and its folded state) from :meth:`to_json`."""
        data = json.loads(text)
        journal = cls(
            sim,
            lease_duration=data["lease_duration"],
            checkpoint_interval=data["checkpoint_interval"],
        )
        journal.epoch = data["epoch"]
        journal._seq = data["seq"]
        journal.compacted_records = data["compacted_records"]
        journal.records = [JournalRecord.from_dict(r) for r in data["records"]]
        for record in journal.records:
            journal.state.apply(record)
        return journal

    def __len__(self) -> int:
        """Records currently held (post-compaction)."""
        return len(self.records)
