"""Samplers for key popularity and value-size distributions.

These back the four synthetic traces (Section V-A / Exp#1): Zipfian key
skew for YCSB, log-uniform sizes for the IBM Object Store trace,
lognormal sizes for Twitter Memcached, and generalized-extreme-value /
Pareto for Facebook's ETC workload.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


class ZipfianSampler:
    """YCSB-style Zipfian item sampler over ``0 .. nitems - 1``.

    Uses the classic Gray et al. rejection-free method (the same one YCSB
    implements) with skew parameter ``theta`` (YCSB default 0.99).
    """

    def __init__(self, nitems: int, theta: float = 0.99, rng=None) -> None:
        if nitems < 1:
            raise SimulationError("ZipfianSampler needs at least one item")
        if not 0 < theta < 1:
            raise SimulationError("theta must lie in (0, 1)")
        self.nitems = nitems
        self.theta = theta
        self.rng = rng if rng is not None else np.random.default_rng()
        self._zetan = self._zeta(nitems, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / nitems) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return float(np.sum(1.0 / np.arange(1, n + 1) ** theta))

    def sample(self) -> int:
        """One item id in [0, nitems); rank 0 is the most popular."""
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(
            self.nitems * (self._eta * u - self._eta + 1) ** self._alpha
        ) % self.nitems


class UniformSampler:
    """Uniform item sampler (used for comparison workloads)."""

    def __init__(self, nitems: int, rng=None) -> None:
        self.nitems = nitems
        self.rng = rng if rng is not None else np.random.default_rng()

    def sample(self) -> int:
        """One item id drawn uniformly from [0, nitems)."""
        return int(self.rng.integers(0, self.nitems))


class FixedSize:
    """Constant value size (YCSB's 512 KB values)."""

    def __init__(self, size: float) -> None:
        if size <= 0:
            raise SimulationError("value size must be positive")
        self.size = float(size)

    def sample(self, rng) -> float:
        """The constant value size in bytes."""
        return self.size


class LogUniformSize:
    """Sizes log-uniform between ``lo`` and ``hi`` (IBM Object Store's
    16 B - 2.4 GB spread, capped for simulation scale)."""

    def __init__(self, lo: float, hi: float) -> None:
        if not 0 < lo < hi:
            raise SimulationError("need 0 < lo < hi")
        self.log_lo = np.log(lo)
        self.log_hi = np.log(hi)

    def sample(self, rng) -> float:
        """A value size in bytes, log-uniform over [lo, hi]."""
        return float(np.exp(rng.uniform(self.log_lo, self.log_hi)))


class LognormalSize:
    """Lognormal sizes with a given mean (Twitter Memcached ~20 KB values)."""

    def __init__(self, mean: float, sigma: float = 1.0) -> None:
        if mean <= 0:
            raise SimulationError("mean must be positive")
        self.sigma = sigma
        # Choose mu so that E[X] = mean for lognormal(mu, sigma).
        self.mu = np.log(mean) - sigma**2 / 2

    def sample(self, rng) -> float:
        """A value size in bytes (>= 1), lognormal with the given mean."""
        return float(max(1.0, rng.lognormal(self.mu, self.sigma)))


class ParetoSize:
    """Pareto-tailed sizes (Facebook ETC values). ``alpha`` > 1 keeps a
    finite mean of ``scale * alpha / (alpha - 1)``."""

    def __init__(self, scale: float, alpha: float = 1.5, cap: float | None = None) -> None:
        if scale <= 0 or alpha <= 1:
            raise SimulationError("need scale > 0 and alpha > 1")
        self.scale = scale
        self.alpha = alpha
        self.cap = cap

    def sample(self, rng) -> float:
        """A value size in bytes, Pareto-tailed from ``scale`` upward."""
        value = self.scale * (1.0 + rng.pareto(self.alpha))
        if self.cap is not None:
            value = min(value, self.cap)
        return float(value)


class GEVSize:
    """Generalized-extreme-value sizes (Facebook ETC key sizes).

    Sampled by inverse transform; ``xi`` is the shape parameter.
    """

    def __init__(self, mu: float, sigma: float, xi: float = 0.1, floor: float = 1.0) -> None:
        if sigma <= 0:
            raise SimulationError("sigma must be positive")
        self.mu = mu
        self.sigma = sigma
        self.xi = xi
        self.floor = floor

    def sample(self, rng) -> float:
        """A GEV-distributed size in bytes, floored at ``floor``."""
        u = rng.random()
        # Guard against log(0).
        u = min(max(u, 1e-12), 1 - 1e-12)
        if abs(self.xi) < 1e-9:
            value = self.mu - self.sigma * np.log(-np.log(u))
        else:
            value = self.mu + self.sigma * ((-np.log(u)) ** (-self.xi) - 1) / self.xi
        return float(max(self.floor, value))
