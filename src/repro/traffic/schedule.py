"""Time-based trace transitions (the adaptivity experiment, Exp#4)."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.traffic.traces import Request, TraceGenerator


class TransitioningTrace(TraceGenerator):
    """A generator that switches between traces on a fixed schedule.

    ``segments`` is a list of (duration_seconds, generator); the active
    generator is chosen by current simulated time, cycling after the last
    segment — this reproduces Exp#4's "replay each trace for 15 seconds,
    transition to another trace" setup.
    """

    def __init__(self, sim: Simulator, segments: list[tuple[float, TraceGenerator]]) -> None:
        if not segments:
            raise SimulationError("need at least one trace segment")
        if any(duration <= 0 for duration, _ in segments):
            raise SimulationError("segment durations must be positive")
        self.sim = sim
        self.segments = segments
        self.cycle = sum(duration for duration, _ in segments)

    @property
    def name(self) -> str:  # type: ignore[override]
        """Concatenated segment names."""
        return "+".join(gen.name for _, gen in self.segments)

    def active_generator(self, time: float | None = None) -> TraceGenerator:
        """The generator owning the (given or current) instant."""
        t = (self.sim.now if time is None else time) % self.cycle
        for duration, gen in self.segments:
            if t < duration:
                return gen
            t -= duration
        return self.segments[-1][1]

    def next_request(self) -> Request:
        """A request from whichever trace is active right now."""
        return self.active_generator().next_request()
