"""Key-to-node routing for foreground requests."""

from __future__ import annotations

from repro.cluster.stripes import StripeStore
from repro.cluster.topology import Cluster
from repro.errors import SimulationError


class KeyRouter:
    """Maps request keys onto the storage node holding their data chunk.

    Keys hash deterministically onto (stripe, data-chunk) pairs, so the
    foreground load distribution follows the stripe placement, exactly as
    when YCSB rows live in erasure-coded chunks. If the owning node is
    dead, the request is served by another survivor of the same stripe
    (degraded service; the dedicated degraded-read path is measured
    separately in Exp#10).
    """

    def __init__(self, store: StripeStore, cluster: Cluster) -> None:
        if not store.stripes:
            raise SimulationError("router needs at least one stripe")
        self.store = store
        self.cluster = cluster

    def locate(self, key: int) -> tuple[int, int]:
        """(stripe_id, chunk_index) that owns ``key``."""
        stripe_ids = sorted(self.store.stripes)
        stripe_id = stripe_ids[key % len(stripe_ids)]
        chunk_index = (key // len(stripe_ids)) % self.store.code.k
        return stripe_id, chunk_index

    def node_for(self, key: int) -> int:
        """The alive node that serves requests for ``key``."""
        stripe_id, chunk_index = self.locate(key)
        stripe = self.store.stripes[stripe_id]
        owner = stripe.node_of(chunk_index)
        if self.cluster.node(owner).alive:
            return owner
        for node_id in stripe.chunk_nodes:
            if self.cluster.node(node_id).alive:
                return node_id
        raise SimulationError(f"no alive replica for key {key}")
