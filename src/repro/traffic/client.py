"""Closed-loop trace-replaying clients."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cluster.node import MB, Node
from repro.cluster.topology import Cluster
from repro.errors import SimulationError
from repro.events import HookEmitter
from repro.metrics.latency import LatencyRecorder
from repro.traffic.router import KeyRouter
from repro.traffic.traces import TraceGenerator

FOREGROUND_TAG = "foreground"


class TraceClient(HookEmitter):
    """One YCSB-style client: issues requests back-to-back (closed loop).

    Reads move data node -> client (through the node's disk-read and
    uplink); updates move client -> node (through the node's downlink and
    disk-write). Latency per request feeds the shared recorder.

    Events (see :class:`repro.events.HookEmitter`): ``done`` fires once
    when the last request completes; ``request_done`` fires per request
    with ``latency=`` and ``size=`` keywords.
    """

    HOOK_EVENTS = ("done", "request_done")

    def __init__(
        self,
        cluster: Cluster,
        client_node: Node,
        generator: TraceGenerator,
        router: KeyRouter,
        *,
        num_requests: int | None,
        slice_size: float = 1 * MB,
        latency: LatencyRecorder | None = None,
        tag: str = FOREGROUND_TAG,
        think_time: float = 0.002,
        concurrency: int = 4,
        burst_on: float = 0.0,
        burst_off: float = 0.0,
        key_offset: int = 0,
    ) -> None:
        if num_requests is not None and num_requests < 0:
            raise SimulationError("num_requests cannot be negative")
        self.cluster = cluster
        self.client_node = client_node
        self.generator = generator
        self.router = router
        self.num_requests = num_requests
        self.slice_size = slice_size
        self.latency = latency if latency is not None else LatencyRecorder()
        self.tag = tag
        # Fixed per-request software overhead (request parsing, storage
        # engine work); keeps a zero-latency closed loop from issuing
        # unrealistically many requests per second.
        self.think_time = think_time
        # Outstanding requests per client (YCSB worker threads).
        if concurrency < 1:
            raise SimulationError("client concurrency must be at least 1")
        self.concurrency = concurrency
        # ON/OFF bursting (exponential period means, seconds): real
        # foreground traffic fluctuates over time (root cause R1); during
        # an OFF period the client issues nothing. Zero disables bursts.
        self.burst_on = burst_on
        self.burst_off = burst_off
        # Shifts this client's hot key set so concurrent clients hammer
        # different nodes (spatial skew that moves as bursts alternate).
        self.key_offset = key_offset
        self._active_slots = 0
        self._bursting = True
        self._parked_slots = 0
        self._rng = np.random.default_rng(key_offset + 17)
        self.issued = 0
        self.bytes_moved = 0.0
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._stopped = False

    @property
    def done(self) -> bool:
        """True once the client issued and completed its last request."""
        return self.finished_at is not None

    @property
    def execution_time(self) -> float:
        """Wall time from start to last completed request (Exp#2 metric)."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    def start(self) -> None:
        """Begin issuing requests on all worker slots."""
        if self.started_at is not None:
            raise SimulationError("client already started")
        self.started_at = self.cluster.sim.now
        self._active_slots = self.concurrency
        if self.burst_on > 0 and self.burst_off > 0:
            self.cluster.sim.schedule(
                float(self._rng.exponential(self.burst_on)), self._end_burst
            )
        for _ in range(self.concurrency):
            self._issue_next()

    def _end_burst(self) -> None:
        if self.done or self._stopped:
            return
        self._bursting = False
        self.cluster.sim.schedule(
            float(self._rng.exponential(self.burst_off)), self._begin_burst
        )

    def _begin_burst(self) -> None:
        self._bursting = True
        parked, self._parked_slots = self._parked_slots, 0
        for _ in range(parked):
            self._issue_next()
        if not (self.done or self._stopped):
            self.cluster.sim.schedule(
                float(self._rng.exponential(self.burst_on)), self._end_burst
            )

    def stop(self) -> None:
        """Finish the in-flight request, then issue no more.

        Used when clients run unbounded (``num_requests=None``) to keep
        foreground traffic alive exactly as long as a repair runs.
        """
        self._stopped = True
        # Parked burst slots must still drain so the client can finish.
        parked, self._parked_slots = self._parked_slots, 0
        for _ in range(parked):
            self._issue_next()

    def _issue_next(self) -> None:
        exhausted = (
            self.num_requests is not None and self.issued >= self.num_requests
        )
        if self._stopped or exhausted:
            self._active_slots -= 1
            if self._active_slots <= 0 and self.finished_at is None:
                self.finished_at = self.cluster.sim.now
                self.emit("done", self)
            return
        if not self._bursting:
            self._parked_slots += 1
            return
        request = self.generator.next_request()
        self.issued += 1
        node_id = self.router.node_for(request.key + self.key_offset)
        issue_time = self.cluster.sim.now
        if request.op == "read":
            transfer = self.cluster.make_transfer(
                node_id,
                self.client_node.id,
                request.size,
                self.slice_size,
                tag=self.tag,
                read_disk=True,
                write_disk=False,
                name=f"fg-read-{self.client_node.id}-{self.issued}",
            )
        else:
            transfer = self.cluster.make_transfer(
                self.client_node.id,
                node_id,
                request.size,
                self.slice_size,
                tag=self.tag,
                read_disk=False,
                write_disk=True,
                name=f"fg-upd-{self.client_node.id}-{self.issued}",
            )
        transfer.on_complete.append(
            lambda _t, t0=issue_time, size=request.size: self._request_done(t0, size)
        )
        self.cluster.start(transfer)

    def _request_done(self, issue_time: float, size: float) -> None:
        latency = self.cluster.sim.now - issue_time
        self.latency.record(latency)
        self.bytes_moved += size
        self.emit("request_done", self, latency=latency, size=size)
        if self.think_time > 0:
            self.cluster.sim.schedule(self.think_time, self._issue_next)
        else:
            self._issue_next()


def launch_clients(
    cluster: Cluster,
    generator_factory: Callable[[int], TraceGenerator],
    router: KeyRouter,
    *,
    requests_per_client: int | None,
    slice_size: float = 1 * MB,
) -> tuple[list[TraceClient], LatencyRecorder]:
    """Start one closed-loop client per cluster client node.

    ``generator_factory(i)`` builds the trace generator for client ``i``
    (clients must not share one generator so their RNG streams differ).
    Returns the clients plus the shared latency recorder.
    """
    latency = LatencyRecorder("foreground")
    clients = []
    for i, node in enumerate(cluster.clients):
        client = TraceClient(
            cluster,
            node,
            generator_factory(i),
            router,
            num_requests=requests_per_client,
            slice_size=slice_size,
            latency=latency,
        )
        clients.append(client)
        client.start()
    return clients, latency
