"""Synthetic generators for the paper's four foreground traces.

The real traces (YCSB-A on HBase, IBM Object Store trace 000, Twitter
Memcached cluster 37, Facebook ETC) are not redistributable; each
generator below reproduces the characteristics the paper relies on
(op mix, value-size distribution, key skew — Section V-B, Exp#1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.node import KB, MB
from repro.errors import SimulationError
from repro.traffic.distributions import (
    FixedSize,
    GEVSize,
    LognormalSize,
    LogUniformSize,
    ParetoSize,
    UniformSampler,
    ZipfianSampler,
)


@dataclass(frozen=True)
class Request:
    """One foreground operation replayed by a client."""

    op: str  # "read" or "update"
    key: int
    size: float  # value size in bytes


class TraceGenerator:
    """Generates an endless stream of requests with a given character."""

    def __init__(
        self,
        name: str,
        *,
        read_ratio: float,
        key_sampler,
        size_sampler,
        rng=None,
    ) -> None:
        if not 0 <= read_ratio <= 1:
            raise SimulationError("read_ratio must lie in [0, 1]")
        self.name = name
        self.read_ratio = read_ratio
        self.key_sampler = key_sampler
        self.size_sampler = size_sampler
        self.rng = rng if rng is not None else np.random.default_rng()

    def next_request(self) -> Request:
        """Draw one request (op + key + value size)."""
        op = "read" if self.rng.random() < self.read_ratio else "update"
        return Request(
            op=op,
            key=self.key_sampler.sample(),
            size=self.size_sampler.sample(self.rng),
        )

    def requests(self, count: int):
        """Yield exactly ``count`` requests."""
        for _ in range(count):
            yield self.next_request()


def ycsb_a(num_keys: int = 10_000, seed: int = 0) -> TraceGenerator:
    """YCSB-A: 50% reads / 50% updates, Zipfian(0.99), 512 KB values."""
    rng = np.random.default_rng(seed)
    return TraceGenerator(
        "YCSB-A",
        read_ratio=0.5,
        key_sampler=ZipfianSampler(num_keys, theta=0.99, rng=rng),
        size_sampler=FixedSize(512 * KB),
        rng=rng,
    )


def ibm_object_store(
    num_keys: int = 10_000, seed: int = 0, cap: float = 256 * MB
) -> TraceGenerator:
    """IBM Object Store trace 000: wildly varied value sizes (16 B up to
    2.4 GB in the original; capped at ``cap`` for simulation scale),
    read-heavy object storage."""
    rng = np.random.default_rng(seed)
    return TraceGenerator(
        "IBM-OS",
        read_ratio=0.78,
        key_sampler=ZipfianSampler(num_keys, theta=0.9, rng=rng),
        size_sampler=LogUniformSize(16.0, cap),
        rng=rng,
    )


def memcached_twitter(num_keys: int = 50_000, seed: int = 0) -> TraceGenerator:
    """Twitter Memcached cluster 37: 63% GET / 37% SET, ~20 KB mean values."""
    rng = np.random.default_rng(seed)
    return TraceGenerator(
        "Memcached",
        read_ratio=0.63,
        key_sampler=ZipfianSampler(num_keys, theta=0.99, rng=rng),
        size_sampler=LognormalSize(mean=20_134.0, sigma=1.2),
        rng=rng,
    )


def facebook_etc(num_keys: int = 50_000, seed: int = 0) -> TraceGenerator:
    """Facebook ETC: GET:UPDATE of 30:1, GEV-distributed keys and
    Pareto-distributed values (Atikoglu et al., SIGMETRICS'12)."""
    rng = np.random.default_rng(seed)
    gev_keys = GEVSize(mu=30.0, sigma=8.0, xi=0.25, floor=1.0)

    class _GEVKeySampler:
        """Key ids drawn by folding a GEV sample into the key space,
        producing the heavy skew the ETC paper reports."""

        def __init__(self, nitems: int, inner_rng) -> None:
            self.nitems = nitems
            self.rng = inner_rng

        def sample(self) -> int:
            """One folded-GEV key id in [0, nitems)."""
            return int(gev_keys.sample(self.rng) * 97) % self.nitems

    rng_keys = np.random.default_rng(seed + 1)
    return TraceGenerator(
        "Facebook-ETC",
        read_ratio=30.0 / 31.0,
        key_sampler=_GEVKeySampler(num_keys, rng_keys),
        size_sampler=ParetoSize(scale=300.0, alpha=1.5, cap=4 * MB),
        rng=rng,
    )


def uniform_trace(
    num_keys: int = 10_000, value_size: float = 512 * KB, read_ratio: float = 0.5, seed: int = 0
) -> TraceGenerator:
    """A plain uniform workload (useful in tests and ablations)."""
    rng = np.random.default_rng(seed)
    return TraceGenerator(
        "Uniform",
        read_ratio=read_ratio,
        key_sampler=UniformSampler(num_keys, rng=rng),
        size_sampler=FixedSize(value_size),
        rng=rng,
    )


TRACE_FACTORIES = {
    "YCSB-A": ycsb_a,
    "IBM-OS": ibm_object_store,
    "Memcached": memcached_twitter,
    "Facebook-ETC": facebook_etc,
}


def make_trace(name: str, seed: int = 0) -> TraceGenerator:
    """Build one of the four paper traces by name."""
    try:
        factory = TRACE_FACTORIES[name]
    except KeyError:
        raise SimulationError(
            f"unknown trace {name!r}; choose from {sorted(TRACE_FACTORIES)}"
        ) from None
    return factory(seed=seed)
