"""Recording and replaying request traces as files.

The paper replays captured production traces (IBM Object Store, Twitter
Memcached); this module lets users do the same with their own captures:
a trace file is CSV with one ``op,key,size`` row per request. Generators
can be recorded to files, and files replayed through
:class:`FileTrace`, which satisfies the same interface as
:class:`~repro.traffic.traces.TraceGenerator`.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import SimulationError
from repro.traffic.traces import Request, TraceGenerator

_VALID_OPS = ("read", "update")


def save_trace(requests, path: str | Path) -> int:
    """Write requests (any iterable of :class:`Request`) to a CSV file.

    Returns the number of rows written.
    """
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["op", "key", "size"])
        for request in requests:
            if request.op not in _VALID_OPS:
                raise SimulationError(f"invalid op {request.op!r} in trace")
            writer.writerow([request.op, request.key, f"{request.size:g}"])
            count += 1
    return count


def record_trace(
    generator: TraceGenerator, count: int, path: str | Path
) -> int:
    """Sample ``count`` requests from a generator into a trace file."""
    if count < 1:
        raise SimulationError("record_trace needs a positive request count")
    return save_trace(generator.requests(count), path)


def load_trace(path: str | Path) -> list[Request]:
    """Read a trace file back into memory (validating every row)."""
    path = Path(path)
    if not path.exists():
        raise SimulationError(f"trace file {path} does not exist")
    requests: list[Request] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["op", "key", "size"]:
            raise SimulationError(f"{path}: not a trace file (bad header {header})")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise SimulationError(f"{path}:{line_no}: expected 3 columns")
            op, key, size = row
            if op not in _VALID_OPS:
                raise SimulationError(f"{path}:{line_no}: invalid op {op!r}")
            try:
                parsed = Request(op=op, key=int(key), size=float(size))
            except ValueError as exc:
                raise SimulationError(f"{path}:{line_no}: {exc}") from None
            if parsed.size <= 0:
                raise SimulationError(f"{path}:{line_no}: size must be positive")
            requests.append(parsed)
    if not requests:
        raise SimulationError(f"{path}: trace file holds no requests")
    return requests


class FileTrace:
    """Replays a recorded trace file; drop-in for a TraceGenerator.

    ``loop`` controls behaviour at end-of-trace: cycle back to the start
    (the default, matching unbounded clients) or raise StopIteration
    semantics via :class:`SimulationError`.
    """

    def __init__(self, path: str | Path, *, loop: bool = True) -> None:
        self.path = Path(path)
        self.requests_list = load_trace(self.path)
        self.loop = loop
        self._cursor = 0

    @property
    def name(self) -> str:
        """Display name carrying the source file."""
        return f"file:{self.path.name}"

    def __len__(self) -> int:
        return len(self.requests_list)

    def next_request(self) -> Request:
        """The next recorded request (wraps around when ``loop``)."""
        if self._cursor >= len(self.requests_list):
            if not self.loop:
                raise SimulationError(f"trace {self.path} exhausted")
            self._cursor = 0
        request = self.requests_list[self._cursor]
        self._cursor += 1
        return request

    def requests(self, count: int):
        """Yield exactly ``count`` replayed requests."""
        for _ in range(count):
            yield self.next_request()

    def rewind(self) -> None:
        """Restart replay from the first recorded request."""
        self._cursor = 0
