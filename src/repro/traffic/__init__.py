"""Foreground workload generation and replay."""

from repro.traffic.client import FOREGROUND_TAG, TraceClient, launch_clients
from repro.traffic.distributions import (
    FixedSize,
    GEVSize,
    LognormalSize,
    LogUniformSize,
    ParetoSize,
    UniformSampler,
    ZipfianSampler,
)
from repro.traffic.router import KeyRouter
from repro.traffic.schedule import TransitioningTrace
from repro.traffic.tracefile import FileTrace, load_trace, record_trace, save_trace
from repro.traffic.traces import (
    TRACE_FACTORIES,
    Request,
    TraceGenerator,
    facebook_etc,
    ibm_object_store,
    make_trace,
    memcached_twitter,
    uniform_trace,
    ycsb_a,
)

__all__ = [
    "FOREGROUND_TAG",
    "FileTrace",
    "FixedSize",
    "GEVSize",
    "KeyRouter",
    "load_trace",
    "record_trace",
    "save_trace",
    "LognormalSize",
    "LogUniformSize",
    "ParetoSize",
    "Request",
    "TRACE_FACTORIES",
    "TraceClient",
    "TraceGenerator",
    "TransitioningTrace",
    "UniformSampler",
    "ZipfianSampler",
    "facebook_etc",
    "ibm_object_store",
    "launch_clients",
    "make_trace",
    "memcached_twitter",
    "uniform_trace",
    "ycsb_a",
]
