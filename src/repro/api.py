"""Stable public facade: build and drive a testbed in a few lines.

:class:`Testbed` is the complete implementation — cluster, stripe
placement, bandwidth monitor, foreground clients, repairer construction,
fault wiring: a :class:`repro.faults.FaultTimeline` installed on a
testbed forwards the chunks lost in a mid-run crash to every repairer
built through :meth:`Testbed.make_repairer`, so recovery "just works".
The legacy ``repro.experiments.scenario.Scenario`` is a deprecated
alias of this class.

Two construction styles::

    from repro import Testbed, ExperimentConfig

    tb = Testbed.build(ExperimentConfig.scaled(0.05))

    tb = (Testbed.builder()
          .with_code("rs-6-3")
          .with_nodes(20)
          .with_trace("ycsb-a")
          .build())

Then::

    tb.start_foreground()
    report = tb.fail_nodes(1)
    repairer = tb.make_repairer("ChameleonEC")
    repairer.repair(report.failed_chunks)
    tb.run_until(lambda: repairer.done)
"""

from __future__ import annotations

import math
import re

from repro.cluster.datastore import ChunkStore, drop_node_chunks, encode_and_load
from repro.cluster.failures import FailureInjector, FailureReport
from repro.cluster.node import mbs
from repro.cluster.placement import place_stripes
from repro.cluster.stripes import ChunkId
from repro.cluster.topology import Cluster
from repro.codes.registry import make_code
from repro.control import AdmissionController, AIMDPolicy
from repro.core.chameleon import ChameleonRepair
from repro.core.chameleon_io import ChameleonRepairIO
from repro.errors import ReproError
from repro.experiments.algorithms import (
    ALL_ALGORITHMS,
    BASELINES,
    BOOSTED,
    CHAMELEON_VARIANTS,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.driver import MAX_SIM_TIME, run_sim_until
from repro.faults.timeline import FaultTimeline
from repro.integrity.ledger import IntegrityLedger
from repro.integrity.scrubber import Scrubber
from repro.journal import Journal, reconcile
from repro.monitor.bandwidth import BandwidthMonitor
from repro.monitor.failure_detector import FailureDetector
from repro.obs.metrics import get_registry
from repro.obs.timeseries import TimeseriesRecorder
from repro.obs.tracer import get_tracer
from repro.repair.base import ConventionalRepair, ECPipe, PPR
from repro.repair.dataplane import DataPlane
from repro.repair.hedging import HedgePolicy
from repro.repair.repairboost import RepairBoost
from repro.repair.runner import RepairRunner
from repro.slo import RunTelemetry, SLOEvaluator, SLOReport, SLOSpec
from repro.traffic.client import TraceClient
from repro.traffic.router import KeyRouter
from repro.traffic.schedule import TransitioningTrace
from repro.traffic.traces import TRACE_FACTORIES, make_trace

_CODE_FAMILIES = {"rs": "RS", "lrc": "LRC", "butterfly": "Butterfly"}
_CODE_REGISTRY_FORM = re.compile(r"^([A-Za-z]+)\((\d+(?:,\d+)*)\)$")
_CODE_VALID_FORMS = (
    "'RS(k,m)' / 'rs-k-m', 'LRC(k,l,m)' / 'lrc-k-l-m', "
    "'Butterfly(n,k)' / 'butterfly-n-k'"
)


def _normalize_code(spec: str) -> str:
    """Accept both registry syntax ("RS(6,3)") and slugs ("rs-6-3").

    Every accepted spelling is validated here — family name known,
    parameters all-numeric — so a typo fails at build-description time
    with the list of valid forms, not deep inside the code registry.
    """
    compact = spec.replace(" ", "")
    match = _CODE_REGISTRY_FORM.match(compact)
    if match:
        family = _CODE_FAMILIES.get(match.group(1).lower())
        if family is not None:
            return f"{family}({match.group(2)})"
    else:
        parts = compact.replace("_", "-").split("-")
        family = _CODE_FAMILIES.get(parts[0].lower())
        if (
            family is not None
            and len(parts) >= 2
            and all(p.isdigit() for p in parts[1:])
        ):
            return f"{family}({','.join(parts[1:])})"
    raise ReproError(
        f"cannot parse code spec {spec!r}; valid forms: {_CODE_VALID_FORMS}"
    )


def _normalize_trace(name: str) -> str:
    """Case-insensitive trace lookup: 'ycsb-a' -> 'YCSB-A'."""
    by_lower = {key.lower(): key for key in TRACE_FACTORIES}
    try:
        return by_lower[name.lower()]
    except KeyError:
        raise ReproError(
            f"unknown trace {name!r}; valid traces: {sorted(TRACE_FACTORIES)}"
        ) from None


class ShardRouter:
    """Deterministic stripe-hash partitioning of the repair batch.

    Each chunk belongs to exactly one control-plane shard, derived from
    its stripe id by a Knuth multiplicative hash — stable across runs,
    processes and platforms (pure integer arithmetic, no PYTHONHASHSEED
    dependence), so a recovering coordinator re-derives the identical
    partition its predecessor used. All chunks of one stripe land on
    the same shard, keeping any stripe-local planning within one
    coordinator. With one shard everything maps to shard 0, making the
    sharded path degenerate exactly into the single-coordinator one.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ReproError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, chunk: ChunkId) -> int:
        """The shard owning ``chunk`` (constant per stripe)."""
        return ((chunk.stripe * 2654435761) & 0xFFFFFFFF) % self.num_shards

    def partition(self, chunks) -> list[list[ChunkId]]:
        """Split ``chunks`` into per-shard batches, preserving order."""
        parts: list[list[ChunkId]] = [[] for _ in range(self.num_shards)]
        for chunk in chunks:
            parts[self.shard_of(chunk)].append(chunk)
        return parts


class Testbed:
    """One ready-to-run testbed: cluster + stripes + monitor + clients.

    Builds the whole experiment substrate from an
    :class:`ExperimentConfig` — including the columnar flow kernel when
    ``config.columnar_kernel`` is set — and layers fault-timeline
    wiring, integrity, journalling and admission control on top.
    """

    __test__ = False  # "Test" prefix; keep pytest from collecting this

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        config = config if config is not None else ExperimentConfig.scaled()
        self.config = config
        self.code = make_code(config.code)
        self.cluster = Cluster(
            num_nodes=config.num_nodes,
            num_clients=config.num_clients,
            link_bw=config.link_bw,
            disk_read_bw=config.disk_read_bw,
            disk_write_bw=config.disk_write_bw,
            racks=config.racks,
            oversubscription=config.oversubscription,
            columnar_kernel=config.columnar_kernel,
        )
        # When tracing is on, timestamps follow this testbed's simulator
        # (successive testbeds lay out sequentially in one trace file).
        get_tracer().bind_clock(self.cluster.sim)
        # Enough stripes that the first failed node holds >= num_chunks
        # chunks (each node appears in a stripe with probability n/N).
        expected_per_stripe = self.code.n / config.num_nodes
        num_stripes = max(
            config.num_chunks,
            math.ceil(config.num_chunks / expected_per_stripe * 1.3),
        )
        self.store = place_stripes(
            self.code,
            num_stripes,
            self.cluster.storage_ids,
            chunk_size=int(config.chunk_size),
            seed=config.seed,
        )
        self.injector = FailureInjector(self.cluster, self.store)
        # The paper's 5 s monitoring window, shrunk with the phase length
        # so scaled runs still refresh estimates several times per phase.
        monitor_window = max(0.5, 5.0 * config.t_phase / 20.0)
        self.monitor = BandwidthMonitor(self.cluster, window=monitor_window)
        self.monitor.start()
        self.router = KeyRouter(self.store, self.cluster)
        self.clients: list[TraceClient] = []
        self.latency = None
        #: Every repairer built through :meth:`make_repairer`; crash
        #: reports from an installed fault timeline fan out to these.
        self.repairers: list = []
        self.fault_timeline: FaultTimeline | None = None
        self.chunk_store: ChunkStore | None = None
        self.ledger: IntegrityLedger | None = None
        self.dataplane: DataPlane | None = None
        self.scrubber: Scrubber | None = None
        self.journal: Journal | None = None
        self.timeseries: TimeseriesRecorder | None = None
        self.controller: AdmissionController | None = None
        self.slos: list[SLOSpec] = []
        #: ``id(repairer) -> (algorithm name, user overrides)`` so a
        #: crashed coordinator can be rebuilt identically on recovery.
        self._repairer_specs: dict[int, tuple[str, dict]] = {}
        #: ``id(repairer) -> shard`` (``None`` = unsharded coordinator).
        self._repairer_shards: dict[int, int | None] = {}
        #: Crash instants keyed by shard (``None`` = a whole-plane
        #: crash), so overlapping crashes of different shards each keep
        #: their own MTTR attribution.
        self._coordinator_crash_times: dict[int | None, float] = {}
        #: Router installed by :meth:`start_sharded_repair`.
        self.shard_router: ShardRouter | None = None
        #: One entry per observed coordinator crash: the fraction of
        #: open (pending + leased) chunks stalled by it — the failover
        #: blast radius exp19 sweeps.
        self.crash_blasts: list[dict] = []
        #: Accrual failure detector (see :meth:`enable_failure_detector`).
        self.detector: FailureDetector | None = None
        #: Hedged-read policy applied to every repairer (see
        #: :meth:`enable_hedged_reads`).
        self.hedge_policy: HedgePolicy | None = None
        #: ``id(repairer) -> home node`` for coordinators pinned with
        #: :meth:`place_coordinator` (partition-aware control plane).
        self.coordinator_homes: dict[int, int] = {}
        #: Node hosting the journal/metadata service (None = first
        #: client). Coordinators cut off from it get zombie-fenced.
        self.journal_home: int | None = None
        #: Coordinators fenced while partitioned away, awaiting heal.
        self._zombies: set[int] = set()
        #: Zombie coordinators that stepped down after reconnecting.
        self.zombie_stepdowns = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(cls, config: ExperimentConfig | None = None) -> "Testbed":
        """Build a testbed from a config (``None`` = scaled defaults)."""
        return cls(config)

    @classmethod
    def builder(cls) -> "TestbedBuilder":
        """Start a fluent builder (``.with_code(...)...build()``)."""
        return TestbedBuilder(cls)

    # -- foreground -----------------------------------------------------------

    def start_foreground(
        self,
        trace: str | None = None,
        *,
        num_clients: int | None = None,
        transition_segments: list[tuple[float, str]] | None = None,
    ) -> None:
        """Launch closed-loop clients replaying the configured trace.

        With timeseries enabled, the foreground latency recorder joins
        the sampler automatically.
        """
        from repro.metrics.latency import LatencyRecorder

        cfg = self.config
        self.latency = LatencyRecorder("foreground")
        count = len(self.cluster.clients) if num_clients is None else num_clients
        for i, node in enumerate(self.cluster.clients[:count]):
            if transition_segments is not None:
                generator = TransitioningTrace(
                    self.cluster.sim,
                    [
                        (duration, make_trace(name, seed=cfg.seed * 97 + i * 13 + j))
                        for j, (duration, name) in enumerate(transition_segments)
                    ],
                )
            else:
                generator = make_trace(
                    trace if trace is not None else cfg.trace,
                    seed=cfg.seed * 97 + i * 13 + 1,
                )
            # Bursty ON/OFF behaviour with per-client hot-key affinity:
            # the occupied bandwidth then fluctuates over time and space,
            # the root causes (R1/R2) ChameleonEC is designed around.
            burst_factor = cfg.t_phase / 20.0
            client = TraceClient(
                self.cluster,
                node,
                generator,
                self.router,
                num_requests=cfg.requests_per_client,
                slice_size=cfg.slice_size,
                latency=self.latency,
                burst_on=8.0 * burst_factor,
                burst_off=5.0 * burst_factor,
                key_offset=i * 7919,
            )
            self.clients.append(client)
            client.start()
        if self.timeseries is not None:
            self.timeseries.track_latency(self.latency, name="foreground")

    def stop_foreground(self) -> None:
        """Ask every client to finish its in-flight request and stop."""
        for client in self.clients:
            client.stop()

    def foreground_done(self) -> bool:
        """True when every client has drained."""
        return all(c.done for c in self.clients)

    # -- failures -------------------------------------------------------------

    def fail_nodes(self, count: int = 1) -> FailureReport:
        """Fail the first ``count`` storage nodes; trim to num_chunks chunks.

        With integrity enabled, the dead nodes' stored payloads are
        dropped too (only the checksums survive as the write-back
        oracle).
        """
        report = self.injector.fail_nodes(list(range(count)))
        per_node = max(1, self.config.num_chunks // count)
        chunks: list[ChunkId] = []
        for node_id in report.failed_nodes:
            node_chunks = [
                c for c in report.failed_chunks if self._original_node(c) == node_id
            ]
            chunks.extend(node_chunks[:per_node])
        report.failed_chunks = chunks[: self.config.num_chunks]
        if self.chunk_store is not None:
            for dead in report.failed_nodes:
                drop_node_chunks(self.chunk_store, self.store, dead)
        return report

    def _original_node(self, chunk: ChunkId) -> int:
        return self.store.node_of(chunk)

    # -- repair ---------------------------------------------------------------

    def make_repairer(self, name: str, *, shard: int | None = None, **overrides):
        """Build a runner/coordinator for the named algorithm.

        The repairer is registered so an installed fault timeline can
        hand it the extra chunks a later crash produces; with integrity
        enabled it is also attached to the data plane (verified repair)
        and the scrubber (detections become its work).

        ``shard`` binds the repairer to one journal partition: it
        writes through :meth:`Journal.shard_view`, crashes only with a
        :class:`~repro.faults.CoordinatorCrash` targeting its shard (or
        the whole plane), and only adopts scrubber detections its shard
        owns. Requires :meth:`enable_journal`. Most callers want
        :meth:`start_sharded_repair` instead of binding shards by hand.
        """
        spec = (name, dict(overrides))
        if shard is not None and self.journal is None:
            raise ReproError(
                "a sharded coordinator needs a journal; call "
                "enable_journal() (or builder .with_journal()) first"
            )
        if self.journal is not None:
            view = (
                self.journal if shard is None else self.journal.shard_view(shard)
            )
            overrides.setdefault("journal", view)
        if self.hedge_policy is not None:
            overrides.setdefault("hedge", self.hedge_policy)
        repairer = self._build_repairer(name, **overrides)
        self.repairers.append(repairer)
        self._repairer_specs[id(repairer)] = spec
        self._repairer_shards[id(repairer)] = shard
        if self.dataplane is not None:
            self.dataplane.attach(repairer)
        if self.scrubber is not None:
            self.scrubber.attach(repairer, shard=shard)
        if self.controller is not None:
            self.controller.attach_repairer(repairer)
        return repairer

    def start_sharded_repair(
        self, name: str, chunks, *, shards: int, **overrides
    ) -> list:
        """Partition ``chunks`` across ``shards`` concurrent coordinators.

        A :class:`ShardRouter` deterministically hashes each chunk's
        stripe to a shard; one repairer per shard is built (each
        write-through to its own journal partition) and started on its
        partition, in shard order. The configured reconstruction
        parallelism is split evenly across shards (each gets at least
        1), so total parallelism matches the single-coordinator run.
        With ``shards=1`` this degenerates exactly into
        ``make_repairer(name).repair(chunks)``.

        Returns the repairers, indexed by shard. The router is also
        installed on the scrubber (detections go only to the owning
        shard) and used to route later node-crash chunks.
        """
        if self.journal is None:
            raise ReproError(
                "sharded repair needs a journal; call enable_journal() "
                "(or builder .with_journal()) first"
            )
        router = ShardRouter(shards)
        self.shard_router = router
        if self.scrubber is not None:
            self.scrubber.router = router
        parts = router.partition(chunks)
        per_shard = max(1, self.config.concurrency // shards)
        key = "concurrency" if name in BASELINES or name in BOOSTED else "max_inflight"
        repairers = []
        for shard in range(shards):
            merged = dict(overrides)
            merged.setdefault(key, per_shard)
            repairers.append(self.make_repairer(name, shard=shard, **merged))
        for shard, repairer in enumerate(repairers):
            repairer.repair(parts[shard])
        return repairers

    def shard_of_repairer(self, repairer) -> int | None:
        """The journal shard ``repairer`` is bound to (None = unsharded)."""
        return self._repairer_shards.get(id(repairer))

    def _build_repairer(self, name: str, **overrides):
        """Construct (without registering) the named algorithm's repairer."""
        cfg = self.config
        seed = cfg.seed + 1
        if name in BASELINES or name in BOOSTED:
            inner = {"CR": ConventionalRepair, "PPR": PPR, "ECPipe": ECPipe}[
                name.replace("RB+", "")
            ](seed=seed)
            algo = RepairBoost(inner, seed=seed) if name.startswith("RB+") else inner
            return RepairRunner(
                self.cluster,
                self.store,
                self.injector,
                algo,
                chunk_size=cfg.chunk_size,
                slice_size=cfg.slice_size,
                concurrency=overrides.pop("concurrency", cfg.concurrency),
                **overrides,
            )
        if name in CHAMELEON_VARIANTS:
            kwargs = dict(
                chunk_size=cfg.chunk_size,
                slice_size=cfg.slice_size,
                t_phase=cfg.t_phase,
                check_interval=cfg.check_interval,
                straggler_threshold=cfg.straggler_threshold,
                # Same reconstruction parallelism as the baselines so the
                # comparison isolates scheduling quality.
                max_inflight=cfg.concurrency,
            )
            kwargs.update(overrides)
            if name == "ETRP":
                kwargs["enable_reordering"] = False
                kwargs["enable_retuning"] = False
                coordinator = ChameleonRepair(
                    self.cluster, self.store, self.injector, self.monitor, **kwargs
                )
                coordinator.name = "ETRP"
                return coordinator
            cls = ChameleonRepairIO if name == "ChameleonEC-IO" else ChameleonRepair
            return cls(self.cluster, self.store, self.injector, self.monitor, **kwargs)
        raise ReproError(f"unknown algorithm {name!r}; choose from {ALL_ALGORITHMS}")

    def run_until(self, predicate, step: float = 5.0, limit: float = MAX_SIM_TIME):
        """Advance virtual time until ``predicate()`` holds (or ``limit``)."""
        return run_sim_until(self.cluster, predicate, step, limit)

    # -- observability & SLOs --------------------------------------------------

    def enable_timeseries(self, *, window: float = 5.0) -> TimeseriesRecorder:
        """Record per-window virtual-time series for this testbed.

        Tracks every cluster resource (per-tag bandwidth attribution:
        foreground vs repair vs scrub shares of each link/disk), the
        process-global metrics registry when one is installed, and —
        once :meth:`start_foreground` runs — the foreground latency
        recorder (exact per-window P50/P99). Idempotent; returns the
        recorder. Stop it (``testbed.timeseries.stop()``) before driving
        the simulator with an unbounded ``run()``.
        """
        if self.timeseries is not None:
            return self.timeseries
        recorder = TimeseriesRecorder(self.cluster.sim, window=window)
        resources = []
        for node in self.cluster.storage_nodes + self.cluster.clients:
            resources.extend(node.all_resources())
        recorder.track_resources(resources)
        registry = get_registry()
        if registry.enabled:
            recorder.track_registry(registry)
        if self.latency is not None:
            recorder.track_latency(self.latency, name="foreground")
        recorder.start()
        self.timeseries = recorder
        return recorder

    def set_slos(self, *specs: SLOSpec) -> None:
        """Declare the objectives :meth:`evaluate_slos` will assert."""
        self.slos = list(specs)

    def evaluate_slos(
        self,
        *,
        specs: list[SLOSpec] | None = None,
        baseline_p99: float = 0.0,
    ) -> SLOReport:
        """Assert the declared SLOs against this run's telemetry.

        Builds a :class:`~repro.slo.RunTelemetry` from the testbed's own
        state — the timeseries recorder, the integrity ledger, repair
        timing from every repairer's meter, lost/unverified chunk counts
        — and evaluates ``specs`` (default: :meth:`set_slos`'s list).
        ``baseline_p99`` anchors the foreground-inflation ceiling; pass
        the calm-period P99 (e.g. from pre-chaos windows).
        """
        chosen = specs if specs is not None else self.slos
        if not chosen:
            raise ReproError(
                "no SLOs declared; call set_slos() (or builder "
                ".with_slos()) or pass specs="
            )
        started = [
            r.meter.started_at
            for r in self.repairers
            if r.meter.started_at is not None
        ]
        finished = [r.meter.finished_at for r in self.repairers]
        all_done = bool(self.repairers) and all(
            f is not None for f in finished
        )
        lost = sum(len(getattr(r, "lost", ())) for r in self.repairers)
        unverified = 0
        if self.chunk_store is not None:
            unverified = sum(
                1
                for chunk in self.chunk_store.chunks()
                if not self.chunk_store.verify(chunk)
            )
        telemetry = RunTelemetry(
            end_time=self.cluster.sim.now,
            timeseries=self.timeseries,
            baseline_p99=baseline_p99,
            repair_started_at=min(started) if started else None,
            repair_finished_at=(
                max(finished) if all_done and finished else None
            ),
            chunks_lost=lost,
            unverified_chunks=unverified,
            ledger=self.ledger,
        )
        return SLOEvaluator(chosen).evaluate(telemetry)

    # -- adaptive admission control --------------------------------------------

    def enable_admission_control(
        self,
        *,
        policy: AIMDPolicy | None = None,
        baseline_p99: float | None = None,
        calibration_windows: int = 3,
        window: float = 5.0,
    ) -> AdmissionController:
        """Close the telemetry loop: AIMD-throttle scrub/repair intensity.

        Enables the timeseries recorder if needed (``window`` only
        applies then — an existing recorder keeps its cadence) and
        installs an :class:`~repro.control.AdmissionController` that
        backs off the scrubber's rate and every repairer's parallelism
        when the per-window foreground P99 inflates past
        ``policy.high_water`` × the baseline, recovering additively when
        headroom returns. The scrubber and all repairers — existing and
        future, including post-crash replacements from
        :meth:`recover_repairer` — are attached automatically.

        With ``baseline_p99=None`` the controller calibrates itself over
        the first ``calibration_windows`` non-empty windows. Idempotent;
        returns the controller. Stop it
        (``testbed.controller.stop()``) alongside the recorder before
        driving the simulator with an unbounded ``run()``.
        """
        if self.controller is not None:
            return self.controller
        recorder = self.enable_timeseries(window=window)
        controller = AdmissionController(
            recorder,
            policy=policy,
            baseline_p99=baseline_p99,
            calibration_windows=calibration_windows,
        )
        if self.scrubber is not None:
            controller.attach_scrubber(self.scrubber)
        for repairer in self.repairers:
            controller.attach_repairer(repairer)
        controller.start()
        self.controller = controller
        return controller

    # -- partition tolerance ---------------------------------------------------

    def enable_partitions(
        self,
        *,
        count: int = 1,
        duration: tuple[float, float] = (2.0, 6.0),
        group_fraction: tuple[float, float] = (0.2, 0.5),
        horizon: float | None = None,
        seed: int | None = None,
    ) -> FaultTimeline:
        """Schedule seeded network-partition waves over the storage nodes.

        Builds a :meth:`FaultTimeline.partitions` schedule (each wave
        splits a random group off for a bounded duration, stalling every
        cross-cut flow until heal) and installs it. Offsets count from
        now. Returns the timeline; compose further faults on it *before*
        calling, or install a second timeline afterwards.
        """
        horizon = horizon if horizon is not None else self.config.t_phase * 2
        timeline = FaultTimeline(
            seed=self.config.seed + 31 if seed is None else seed
        ).partitions(
            nodes=list(self.cluster.storage_ids),
            horizon=horizon,
            count=count,
            duration=duration,
            group_fraction=group_fraction,
        )
        return self.install_faults(timeline)

    def enable_failure_detector(
        self,
        *,
        heartbeat_interval: float = 0.5,
        threshold: float = 3.0,
        window: int = 8,
        home: int | None = None,
        min_heartbeat_capacity: float = 0.05,
    ) -> FailureDetector:
        """Start the accrual (phi) failure detector and wire it in.

        Heartbeats flow over the same partitionable links as data, so
        crashes, partitions and deep stragglers all starve them. The
        detector's suspicion feeds two consumers automatically: the
        failure injector filters suspected helpers out of fresh plans
        (best-effort — never affects repairability), and every started
        repairer fails its in-flight instances touching a fresh suspect
        (``helper_suspected``), re-planning *before* ``chunk_timeout``
        fires. Idempotent; returns the detector.
        """
        if self.detector is not None:
            return self.detector
        detector = FailureDetector(
            self.cluster,
            heartbeat_interval=heartbeat_interval,
            threshold=threshold,
            window=window,
            home=home,
            min_heartbeat_capacity=min_heartbeat_capacity,
        ).start()
        detector.on("suspect", self._on_suspect)
        self.injector.suspicion = detector.is_suspected
        self.detector = detector
        return detector

    def _on_suspect(self, _detector, node_id, false_positive) -> None:
        for repairer in self.repairers:
            if getattr(repairer, "_started", False) and not getattr(
                repairer, "crashed", False
            ):
                repairer.helper_suspected(node_id)

    def enable_hedged_reads(
        self,
        *,
        series: str = "lat.foreground.p99",
        multiplier: float = 4.0,
        min_delay: float = 2.0,
        fixed_delay: float | None = None,
    ) -> HedgePolicy:
        """Race backup plans against tail-latency repairs.

        Installs a :class:`~repro.repair.hedging.HedgePolicy` on every
        repairer, existing and future: an in-flight chunk running past
        the hedge delay (derived from the live ``series`` p99 when the
        timeseries recorder is on, else ``min_delay``) launches one
        backup plan built around its slowest helper; first complete
        wins, the loser is cancelled. Idempotent; returns the policy.
        """
        if self.hedge_policy is not None:
            return self.hedge_policy
        policy = HedgePolicy(
            recorder=self.timeseries,
            series=series,
            multiplier=multiplier,
            min_delay=min_delay,
            fixed_delay=fixed_delay,
        )
        self.hedge_policy = policy
        for repairer in self.repairers:
            if getattr(repairer, "hedge", None) is None:
                repairer.hedge = policy
        return policy

    def place_coordinator(self, repairer, node_id: int) -> None:
        """Pin ``repairer``'s control process to a home node.

        A pinned coordinator participates in the zombie protocol: when a
        partition cuts its home off from :attr:`journal_home`, the rest
        of the cluster fences its journal shard (it is presumed dead),
        so every write-through the isolated-but-alive coordinator makes
        is rejected (``journal.fenced_writes``). When the partition
        heals, the zombie observes its fence and steps down
        (:attr:`zombie_stepdowns`); :meth:`recover_repairer` then brings
        up a successor under the next epoch. Requires a journal and a
        *shard-bound* repairer (epoch stamping rides the shard view).
        """
        if self.journal is None:
            raise ReproError(
                "zombie fencing needs a journal; call enable_journal() "
                "(or builder .with_journal()) first"
            )
        if self._repairer_shards.get(id(repairer)) is None:
            raise ReproError(
                "zombie fencing needs a shard-bound coordinator; build "
                "it with make_repairer(name, shard=...)"
            )
        self.coordinator_homes[id(repairer)] = self.cluster.node(node_id).id

    def _journal_home(self) -> int:
        if self.journal_home is not None:
            return self.journal_home
        return (
            self.cluster.clients[0].id
            if self.cluster.clients
            else self.cluster.storage_nodes[0].id
        )

    def _on_partitioned(self, _timeline, event, stalled) -> None:
        if self.journal is None or not self.coordinator_homes:
            return
        home = self._journal_home()
        for repairer in list(self.repairers):
            rid = id(repairer)
            node = self.coordinator_homes.get(rid)
            if node is None or rid in self._zombies:
                continue
            if getattr(repairer, "crashed", False) or not getattr(
                repairer, "_started", False
            ):
                continue
            if self.cluster.reachable(node, home):
                continue
            # The metadata plane lost the coordinator: fence its shard.
            # The coordinator itself keeps running — it is a zombie, and
            # the epoch check (not its cooperation) protects the log.
            shard = self._repairer_shards.get(rid)
            self.journal.fence(shard=0 if shard is None else shard)
            self._zombies.add(rid)
            registry = get_registry()
            if registry.enabled:
                registry.counter("journal.zombie_fences").inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "journal.zombie_fence",
                    track="journal",
                    shard=shard,
                    home=node,
                )

    def _on_healed(self, _timeline, event) -> None:
        if not self._zombies:
            return
        home = self._journal_home()
        for rid in list(self._zombies):
            repairer = next(
                (r for r in self.repairers if id(r) == rid), None
            )
            if repairer is None:
                self._zombies.discard(rid)
                continue
            node = self.coordinator_homes.get(rid)
            if node is not None and not self.cluster.reachable(node, home):
                continue  # still cut off by an overlapping partition
            # Reconnected: the zombie reads its fence and steps down.
            repairer.crash()
            self._zombies.discard(rid)
            self.zombie_stepdowns += 1
            shard = self._repairer_shards.get(rid)
            self._coordinator_crash_times.setdefault(
                shard, self.cluster.sim.now
            )
            registry = get_registry()
            if registry.enabled:
                registry.counter("journal.zombie_stepdowns").inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "journal.zombie_stepdown",
                    track="journal",
                    shard=shard,
                )

    # -- durability & failover -------------------------------------------------

    def enable_journal(
        self,
        *,
        lease_duration: float = 60.0,
        checkpoint_interval: int | None = None,
    ) -> Journal:
        """Give the repair control plane a write-ahead journal.

        Every repairer built through :meth:`make_repairer` *afterwards*
        writes through the journal at each state transition, which is
        what makes :meth:`recover_repairer` possible after a
        :class:`~repro.faults.CoordinatorCrash`. Idempotent; returns the
        journal. Call before building repairers.
        """
        if self.journal is None:
            self.journal = Journal(
                self.cluster.sim,
                lease_duration=lease_duration,
                checkpoint_interval=checkpoint_interval,
            )
        return self.journal

    def inject_coordinator_crash(
        self,
        at: float,
        *,
        recover_after: float | None = None,
        shard: int | None = None,
    ) -> FaultTimeline:
        """Kill the repair coordinator ``at`` seconds from now.

        Installs a one-event fault timeline whose
        :class:`~repro.faults.CoordinatorCrash` tears down every started
        repairer (see :meth:`recover_repairer`). With ``recover_after``
        set (the mean-time-to-recovery of the control plane), a
        replacement coordinator is brought up automatically that many
        seconds after the crash. Requires :meth:`enable_journal` first.

        ``shard`` narrows the blast to one control-plane partition:
        only that shard's coordinator dies and is later recovered,
        while sibling shards' transfers continue untouched.
        """
        if self.journal is None:
            raise ReproError(
                "coordinator crash recovery needs a journal; call "
                "enable_journal() (or builder .with_journal()) first"
            )
        timeline = FaultTimeline(seed=self.config.seed + 29).crash_coordinator(
            at, shard
        )
        self.install_faults(timeline)
        if recover_after is not None:
            if recover_after < 0:
                raise ReproError("recover_after cannot be negative")
            self.cluster.sim.schedule(
                at + recover_after, lambda: self._auto_recover(shard)
            )
        return timeline

    def _on_coordinator_crash(self, _timeline, event) -> None:
        shard = getattr(event, "shard", None)
        crashed_shards: list[int | None] = []
        for repairer in self.repairers:
            if not getattr(repairer, "_started", False) or getattr(
                repairer, "crashed", False
            ):
                continue
            r_shard = self._repairer_shards.get(id(repairer))
            if shard is not None and r_shard != shard:
                continue  # targeted crash: siblings keep running
            repairer.crash()
            crashed_shards.append(r_shard)
        if not crashed_shards:
            return
        now = self.cluster.sim.now
        self._coordinator_crash_times[shard] = now
        if self.journal is not None:
            state = self.journal.state
            open_chunks = state.open_work()
            if shard is None:
                stalled = len(open_chunks)
            else:
                stalled = sum(
                    1
                    for chunk in open_chunks
                    if state.shard_of.get(chunk, 0) == shard
                )
            self.crash_blasts.append(
                {
                    "at": now,
                    "shard": shard,
                    "open": len(open_chunks),
                    "stalled": stalled,
                    "blast": stalled / len(open_chunks) if open_chunks else 0.0,
                }
            )
            # The failure detector observed the death: fence the dead
            # epoch(s) so their leases are provably void at recovery
            # time. Only the crashed shards are fenced — fencing is the
            # blast-radius boundary.
            for r_shard in dict.fromkeys(crashed_shards):
                self.journal.fence(shard=0 if r_shard is None else r_shard)

    def _auto_recover(self, shard: int | None = None) -> None:
        while True:
            candidates = [
                r for r in self.repairers if getattr(r, "crashed", False)
            ]
            if shard is not None:
                candidates = [
                    r
                    for r in candidates
                    if self._repairer_shards.get(id(r)) == shard
                ]
            if not candidates:
                return
            self.recover_repairer(shard=shard)

    def recover_repairer(
        self, name: str | None = None, *, shard: int | None = None, **overrides
    ):
        """Replay the journal and resume repair after a coordinator crash.

        Fences the dead epoch, replays the (compacted) journal into the
        state the dead coordinator had made durable, reconciles that
        intent against :class:`~repro.cluster.datastore.ChunkStore`
        ground truth (when integrity is enabled), and starts a fresh
        coordinator — same algorithm and options as the crashed one
        unless ``name`` / ``overrides`` say otherwise — on exactly the
        chunks that still need repairing. Chunks the journal proves
        committed are never re-executed.

        ``shard`` recovers only that partition's dead coordinator —
        fence, replay, reconcile and rebuild all scoped to the shard,
        under the shard's next epoch; sibling shards are untouched.
        With ``shard=None`` the most recent casualty's shard group is
        recovered (unsharded coordinators form one group), which is the
        pre-sharding behaviour for unsharded testbeds.

        Returns the new repairer, with the
        :class:`~repro.journal.RecoveryPlan` attached as
        ``repairer.recovery``.
        """
        if self.journal is None:
            raise ReproError(
                "recovery needs a journal; call enable_journal() (or "
                "builder .with_journal()) before repairing"
            )
        crashed = [r for r in self.repairers if getattr(r, "crashed", False)]
        if shard is not None:
            crashed = [
                r
                for r in crashed
                if self._repairer_shards.get(id(r)) == shard
            ]
        if not crashed:
            target = "" if shard is None else f" on shard {shard}"
            raise ReproError(f"no crashed repairer to recover{target}")
        # The recovery group: the targeted shard's casualties, or — when
        # untargeted — every casualty sharing the latest one's shard
        # (unsharded coordinators all share the ``None`` group).
        shard_key = (
            shard
            if shard is not None
            else self._repairer_shards.get(id(crashed[-1]))
        )
        group = [
            r
            for r in crashed
            if self._repairer_shards.get(id(r)) == shard_key
        ]
        journal_shard = 0 if shard_key is None else shard_key
        self.journal.fence(shard=journal_shard)
        state = self.journal.replay()
        plan = reconcile(
            state,
            now=self.cluster.sim.now,
            chunk_store=self.chunk_store,
            shard=None if shard_key is None else shard_key,
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "journal.replay",
                track="journal",
                records=len(self.journal),
                epoch=plan.epoch,
                **({} if shard_key is None else {"shard": shard_key}),
                **plan.summary(),
            )
        old = group[-1]
        spec_name, spec_overrides = self._repairer_specs.get(
            id(old), (getattr(old, "name", "ChameleonEC"), {})
        )
        for repairer in group:
            self.repairers.remove(repairer)
            self._repairer_specs.pop(id(repairer), None)
            self._repairer_shards.pop(id(repairer), None)
        merged = dict(spec_overrides)
        merged.update(overrides)
        replacement = self.make_repairer(
            name or spec_name, shard=shard_key, **merged
        )
        replacement.recovery = plan
        # repair() opens a new journal epoch (on the shard, when bound),
        # so requeued chunks get fresh leases owned by the replacement.
        replacement.repair(plan.requeue)
        crash_time = self._coordinator_crash_times.pop(shard_key, None)
        if crash_time is None and shard_key is not None:
            # A whole-plane crash felled this shard: its MTTR is
            # attributed to that crash; later groups of the same crash
            # measure from the same instant.
            crash_time = self._coordinator_crash_times.get(None)
        registry = get_registry()
        if registry.enabled:
            registry.counter("journal.recovery.completed").inc()
            registry.counter("journal.recovery.requeued_chunks").inc(
                len(plan.requeue)
            )
            if crash_time is not None:
                registry.histogram("journal.recovery.latency_s").observe(
                    self.cluster.sim.now - crash_time
                )
        if tracer.enabled:
            tracer.instant(
                "journal.resume",
                track="journal",
                algorithm=name or spec_name,
                requeued=len(plan.requeue),
            )
        if not any(getattr(r, "crashed", False) for r in self.repairers):
            # Everyone recovered: the whole-plane crash instant (if
            # any) has no remaining claimants.
            self._coordinator_crash_times.pop(None, None)
        return replacement

    # -- data integrity --------------------------------------------------------

    def enable_integrity(self, *, payload_size: int = 128) -> DataPlane:
        """Load real chunk payloads + checksums; attach verified repair.

        Every stripe is encoded over random data and stored in a
        :class:`~repro.cluster.datastore.ChunkStore` with per-chunk
        CRC-32 metadata. Repairers (existing and future) get a verified
        :class:`~repro.repair.dataplane.DataPlane`: helper payloads are
        checksum-checked before decode, reconstructions before
        write-back, and corrupted helpers are quarantined + re-planned.
        Idempotent; returns the data plane.

        Call this *before* :meth:`install_faults` when the timeline
        carries corruption events (they damage actual stored bytes).
        """
        if self.dataplane is not None:
            return self.dataplane
        self.chunk_store = encode_and_load(
            self.store, payload_size=payload_size, seed=self.config.seed + 17
        )
        # Nodes that already failed hold no data — only the checksums
        # survive (they are the write-back oracle for the repairs).
        for dead in sorted(self.cluster.failed_node_ids()):
            drop_node_chunks(self.chunk_store, self.store, dead)
        self.ledger = IntegrityLedger(self.cluster.sim)
        self.dataplane = DataPlane(
            self.chunk_store, self.store, self.injector, ledger=self.ledger
        )
        for repairer in self.repairers:
            self.dataplane.attach(repairer)
        return self.dataplane

    def start_scrubber(
        self, *, rate_mbs: float, passes: int | None = None
    ) -> Scrubber:
        """Start background scrubbing at ``rate_mbs`` MB/s of chunk data.

        Enables integrity if needed. The scrubber's read traffic flows
        through the simulator (it contends with foreground I/O and
        repairs); detections are quarantined and enqueued to every
        repairer built through :meth:`make_repairer`.
        """
        if self.scrubber is not None:
            raise ReproError("scrubber already started")
        self.enable_integrity()
        self.scrubber = Scrubber(
            self.cluster,
            self.store,
            self.chunk_store,
            self.injector,
            rate=mbs(rate_mbs),
            slice_size=self.config.slice_size,
            ledger=self.ledger,
            passes=passes,
        )
        for repairer in self.repairers:
            self.scrubber.attach(repairer)
        self.scrubber.start()
        if self.controller is not None:
            self.controller.attach_scrubber(self.scrubber)
        return self.scrubber

    def inject_bitrot(
        self,
        *,
        corruptions: int,
        sector_errors: int = 0,
        horizon: float,
        flips: int = 1,
        max_per_stripe: int | None = None,
        seed: int | None = None,
    ) -> FaultTimeline:
        """Schedule seeded bit-rot over the next ``horizon`` seconds.

        Enables integrity if needed, builds a
        :meth:`FaultTimeline.rot` schedule over every stored chunk, and
        installs it (offsets count from now). Returns the timeline.
        ``max_per_stripe`` caps victims sharing a stripe (keep total
        per-stripe damage within the code's tolerance for scenarios
        that must stay repairable).
        """
        self.enable_integrity()
        timeline = FaultTimeline(
            seed=self.config.seed + 23 if seed is None else seed
        ).rot(
            chunks=list(self.chunk_store.chunks()),
            horizon=horizon,
            corruptions=corruptions,
            sector_errors=sector_errors,
            flips=flips,
            max_per_stripe=max_per_stripe,
        )
        return self.install_faults(timeline)

    # -- faults ---------------------------------------------------------------

    def install_faults(self, timeline: FaultTimeline) -> FaultTimeline:
        """Arm ``timeline`` against this testbed, wiring crash recovery.

        Event offsets count from *now*; call this when the phase you
        want faulted (typically the repair) starts. When a crash kills a
        node, its chunks are forwarded to every started repairer via
        ``add_chunks`` so they are re-repaired in the same run. With
        integrity enabled, corruption events damage stored payloads and
        land in the ledger.
        """
        timeline.on("node_crashed", self._crash_to_repairers)
        timeline.on("coordinator_crashed", self._on_coordinator_crash)
        timeline.on("partitioned", self._on_partitioned)
        timeline.on("healed", self._on_healed)
        if self.ledger is not None:
            self.ledger.attach(timeline)
        timeline.arm(
            self.cluster, injector=self.injector, chunk_store=self.chunk_store
        )
        self.fault_timeline = timeline
        return timeline

    def _crash_to_repairers(self, _timeline, node_id, report, failed_transfers):
        if self.chunk_store is not None:
            for dead in report.failed_nodes:
                drop_node_chunks(self.chunk_store, self.store, dead)
        for repairer in self.repairers:
            if not getattr(repairer, "_started", False):
                continue
            shard = self._repairer_shards.get(id(repairer))
            if shard is None or self.shard_router is None:
                repairer.add_chunks(report.failed_chunks)
            else:
                # Shard-bound coordinators only adopt the chunks their
                # shard owns; handing everything to everyone would
                # double-repair each chunk N times.
                mine = [
                    chunk
                    for chunk in report.failed_chunks
                    if self.shard_router.shard_of(chunk) == shard
                ]
                if mine:
                    repairer.add_chunks(mine)


class TestbedBuilder:
    """Fluent construction of a :class:`Testbed`.

    Every ``with_*`` method returns the builder; ``build()`` produces
    the testbed (``config()`` just the :class:`ExperimentConfig`).
    Unset knobs keep the scaled-run defaults of
    :meth:`ExperimentConfig.scaled`.
    """

    __test__ = False  # "Test" prefix; keep pytest from collecting this

    def __init__(self, testbed_cls: type = Testbed) -> None:
        self._testbed_cls = testbed_cls
        self._scale: float | None = None
        self._overrides: dict = {}
        self._integrity: dict | None = None
        self._scrubber: dict | None = None
        self._bitrot: dict | None = None
        self._journal: dict | None = None
        self._timeseries: dict | None = None
        self._admission: dict | None = None
        self._partitions: dict | None = None
        self._detector: dict | None = None
        self._hedging: dict | None = None
        self._slos: list[SLOSpec] = []

    # -- knobs ----------------------------------------------------------------

    def with_code(self, spec: str) -> "TestbedBuilder":
        """Erasure code, e.g. ``"rs-6-3"``, ``"RS(10,4)"``, ``"lrc-12-2-2"``."""
        self._overrides["code"] = _normalize_code(spec)
        return self

    def with_nodes(self, num_nodes: int) -> "TestbedBuilder":
        """Number of storage nodes."""
        self._overrides["num_nodes"] = num_nodes
        return self

    def with_clients(self, num_clients: int) -> "TestbedBuilder":
        """Number of foreground client nodes."""
        self._overrides["num_clients"] = num_clients
        return self

    def with_trace(self, name: str) -> "TestbedBuilder":
        """Foreground trace, case-insensitive (``"ycsb-a"``, ``"ibm-os"``…)."""
        self._overrides["trace"] = _normalize_trace(name)
        return self

    def with_chunks(self, num_chunks: int) -> "TestbedBuilder":
        """Failed chunks repaired in a full-node repair."""
        self._overrides["num_chunks"] = num_chunks
        return self

    def with_seed(self, seed: int) -> "TestbedBuilder":
        """Placement / trace RNG seed."""
        self._overrides["seed"] = seed
        return self

    def with_link(self, gbps: float) -> "TestbedBuilder":
        """Per-node link bandwidth in Gb/s."""
        self._overrides["link_gbps"] = gbps
        return self

    def with_disk(
        self,
        mbs: float | None = None,
        *,
        read_mbs: float | None = None,
        write_mbs: float | None = None,
    ) -> "TestbedBuilder":
        """Disk bandwidth in MB/s; read/write sides may differ."""
        if mbs is not None:
            self._overrides["disk_mbs"] = mbs
        if read_mbs is not None:
            self._overrides["disk_read_mbs"] = read_mbs
        if write_mbs is not None:
            self._overrides["disk_write_mbs"] = write_mbs
        return self

    def with_columnar_kernel(self, enabled: bool = True) -> "TestbedBuilder":
        """Run the numpy columnar flow kernel (byte-identical results;
        required for 1000-node/100k-flow scale)."""
        self._overrides["columnar_kernel"] = enabled
        return self

    def scaled(self, scale: float) -> "TestbedBuilder":
        """Proportionally shrink the run (see :meth:`ExperimentConfig.scaled`)."""
        self._scale = scale
        return self

    def with_options(self, **kwargs) -> "TestbedBuilder":
        """Escape hatch: set any :class:`ExperimentConfig` field directly."""
        self._overrides.update(kwargs)
        return self

    def with_integrity(self, *, payload_size: int = 128) -> "TestbedBuilder":
        """Load real payloads + checksums (see :meth:`Testbed.enable_integrity`)."""
        self._integrity = {"payload_size": payload_size}
        return self

    def with_scrubber(
        self, rate_mbs: float, *, passes: int | None = None
    ) -> "TestbedBuilder":
        """Start a background scrubber at ``rate_mbs`` MB/s on build."""
        self._scrubber = {"rate_mbs": rate_mbs, "passes": passes}
        return self

    def with_journal(
        self,
        *,
        lease_duration: float = 60.0,
        checkpoint_interval: int | None = None,
    ) -> "TestbedBuilder":
        """Journal the repair control plane (see :meth:`Testbed.enable_journal`)."""
        self._journal = {
            "lease_duration": lease_duration,
            "checkpoint_interval": checkpoint_interval,
        }
        return self

    def with_bitrot(
        self,
        *,
        corruptions: int,
        sector_errors: int = 0,
        horizon: float,
        flips: int = 1,
        max_per_stripe: int | None = None,
        seed: int | None = None,
    ) -> "TestbedBuilder":
        """Schedule seeded bit-rot over ``[0, horizon)`` on build."""
        self._bitrot = {
            "corruptions": corruptions,
            "sector_errors": sector_errors,
            "horizon": horizon,
            "flips": flips,
            "max_per_stripe": max_per_stripe,
            "seed": seed,
        }
        return self

    def with_timeseries(self, *, window: float = 5.0) -> "TestbedBuilder":
        """Record per-window virtual-time series (see
        :meth:`Testbed.enable_timeseries`)."""
        self._timeseries = {"window": window}
        return self

    def with_admission_control(
        self,
        *,
        policy: AIMDPolicy | None = None,
        baseline_p99: float | None = None,
        calibration_windows: int = 3,
        window: float = 5.0,
    ) -> "TestbedBuilder":
        """Install the AIMD admission controller on build (see
        :meth:`Testbed.enable_admission_control`). Without an explicit
        ``baseline_p99`` the controller self-calibrates over the first
        ``calibration_windows`` non-empty foreground windows."""
        self._admission = {
            "policy": policy,
            "baseline_p99": baseline_p99,
            "calibration_windows": calibration_windows,
            "window": window,
        }
        return self

    def with_partitions(
        self,
        *,
        count: int = 1,
        duration: tuple[float, float] = (2.0, 6.0),
        group_fraction: tuple[float, float] = (0.2, 0.5),
        horizon: float | None = None,
        seed: int | None = None,
    ) -> "TestbedBuilder":
        """Schedule seeded partition waves on build (see
        :meth:`Testbed.enable_partitions`)."""
        self._partitions = {
            "count": count,
            "duration": duration,
            "group_fraction": group_fraction,
            "horizon": horizon,
            "seed": seed,
        }
        return self

    def with_failure_detector(
        self,
        *,
        heartbeat_interval: float = 0.5,
        threshold: float = 3.0,
        window: int = 8,
        home: int | None = None,
        min_heartbeat_capacity: float = 0.05,
    ) -> "TestbedBuilder":
        """Start the accrual failure detector on build (see
        :meth:`Testbed.enable_failure_detector`)."""
        self._detector = {
            "heartbeat_interval": heartbeat_interval,
            "threshold": threshold,
            "window": window,
            "home": home,
            "min_heartbeat_capacity": min_heartbeat_capacity,
        }
        return self

    def with_hedged_reads(
        self,
        *,
        series: str = "lat.foreground.p99",
        multiplier: float = 4.0,
        min_delay: float = 2.0,
        fixed_delay: float | None = None,
    ) -> "TestbedBuilder":
        """Hedge tail-latency repairs on build (see
        :meth:`Testbed.enable_hedged_reads`)."""
        self._hedging = {
            "series": series,
            "multiplier": multiplier,
            "min_delay": min_delay,
            "fixed_delay": fixed_delay,
        }
        return self

    def with_slos(self, *specs: SLOSpec) -> "TestbedBuilder":
        """Declare SLOs for :meth:`Testbed.evaluate_slos` (cumulative)."""
        self._slos.extend(specs)
        return self

    # -- products -------------------------------------------------------------

    def config(self) -> ExperimentConfig:
        """The accumulated configuration."""
        if self._scale is not None:
            return ExperimentConfig.scaled(self._scale, **self._overrides)
        return ExperimentConfig.scaled(**self._overrides)

    def build(self) -> Testbed:
        """Materialise the testbed (+ any requested integrity machinery)."""
        testbed = self._testbed_cls(self.config())
        if self._timeseries is not None:
            testbed.enable_timeseries(**self._timeseries)
        if self._slos:
            testbed.set_slos(*self._slos)
        if self._journal is not None:
            testbed.enable_journal(**self._journal)
        if self._integrity is not None:
            testbed.enable_integrity(**self._integrity)
        if self._bitrot is not None:
            testbed.inject_bitrot(**self._bitrot)
        if self._scrubber is not None:
            testbed.start_scrubber(**self._scrubber)
        if self._admission is not None:
            testbed.enable_admission_control(**self._admission)
        if self._detector is not None:
            testbed.enable_failure_detector(**self._detector)
        if self._hedging is not None:
            testbed.enable_hedged_reads(**self._hedging)
        if self._partitions is not None:
            testbed.enable_partitions(**self._partitions)
        return testbed


__all__ = [
    "ALL_ALGORITHMS",
    "ExperimentConfig",
    "ShardRouter",
    "Testbed",
    "TestbedBuilder",
]
