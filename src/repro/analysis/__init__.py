"""Analytical models accompanying the system (reliability, Fig. 2)."""

from repro.analysis.reliability import (
    ReliabilityModel,
    loss_probability_curve,
)

__all__ = ["ReliabilityModel", "loss_probability_curve"]
