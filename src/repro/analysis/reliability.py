"""Reliability analysis: data-loss probability vs repair throughput (Fig. 2).

Implements the Section II-B model: node lifetimes are exponential with
mean ``theta``; while a single-node repair of duration ``tau`` runs, the
probability a given node fails is ``f = 1 - exp(-tau / theta)``. With
RS(k, m) over ``k + m`` nodes, data is lost when ``m`` or more *additional*
nodes fail during the repair:

    Pr_dl = 1 - sum_{i=0}^{m-1} C(k+m-1, i) f^i (1-f)^{k+m-1-i}
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError

YEARS = 365.25 * 24 * 3600


@dataclass(frozen=True)
class ReliabilityModel:
    """Single-node-repair data-loss model for an RS(k, m) system."""

    k: int = 10
    m: int = 4
    node_capacity_bytes: float = 96e12  # 96 TB per node (Section II-B)
    node_lifetime_seconds: float = 10 * YEARS  # theta = 10 years

    def __post_init__(self) -> None:
        if self.k < 1 or self.m < 1:
            raise ReproError("k and m must be positive")
        if self.node_capacity_bytes <= 0 or self.node_lifetime_seconds <= 0:
            raise ReproError("capacity and lifetime must be positive")

    def repair_duration(self, repair_throughput: float) -> float:
        """Seconds to repair one full node at ``repair_throughput`` B/s."""
        if repair_throughput <= 0:
            raise ReproError("repair throughput must be positive")
        return self.node_capacity_bytes / repair_throughput

    def failure_probability(self, duration: float) -> float:
        """P(a node fails within ``duration`` seconds)."""
        return 1.0 - math.exp(-duration / self.node_lifetime_seconds)

    def data_loss_probability(self, repair_throughput: float) -> float:
        """Pr_dl during a single-node repair at the given throughput."""
        tau = self.repair_duration(repair_throughput)
        f = self.failure_probability(tau)
        peers = self.k + self.m - 1
        survive = 0.0
        for i in range(self.m):
            survive += (
                math.comb(peers, i) * f**i * (1.0 - f) ** (peers - i)
            )
        return max(0.0, 1.0 - survive)

    def mttdl_trend(self, repair_throughput: float) -> float:
        """A relative MTTDL indicator: 1 / Pr_dl (larger is safer)."""
        p = self.data_loss_probability(repair_throughput)
        return float("inf") if p == 0 else 1.0 / p


def loss_probability_curve(
    throughputs_mbs: list[float], model: ReliabilityModel | None = None
) -> list[tuple[float, float]]:
    """(repair throughput MB/s, Pr_dl) pairs — the Fig. 2 series."""
    model = model if model is not None else ReliabilityModel()
    return [
        (t, model.data_loss_probability(t * 1e6)) for t in throughputs_mbs
    ]
