"""Repair-progress tracking and straggler detection (Section III-C).

Every repair task carries an *expectation* — the time by which it should
finish given the idle bandwidth at dispatch. The tracker flags tasks
whose completion has slipped past the expectation by more than a
threshold; ChameleonEC reacts with transmission re-ordering and repair
re-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.transfers import Transfer


@dataclass
class TrackedTask:
    """One repair task (a transfer) plus its expected completion time."""

    transfer: Transfer
    expected_finish: float
    chunk_key: object = None  # which failed chunk this task serves

    def is_delayed(self, now: float, threshold: float) -> bool:
        """True when the task overran its expectation by > threshold."""
        if self.transfer.done or self.transfer.cancelled:
            return False
        return now > self.expected_finish + threshold


@dataclass
class ProgressTracker:
    """Collects tracked tasks and reports stragglers.

    Finished tasks are pruned as soon as a scan encounters them, so the
    per-check cost tracks the number of *live* tasks — over a long
    repair the tracked set would otherwise grow with every transfer ever
    dispatched. Pruned counts are kept for reporting.
    """

    threshold: float = 2.0
    tasks: list[TrackedTask] = field(default_factory=list)
    completed_count: int = 0
    cancelled_count: int = 0

    def track(self, transfer: Transfer, expected_finish: float, chunk_key=None) -> TrackedTask:
        """Register a task with its expected completion time."""
        if expected_finish < 0:
            raise SimulationError("expectation cannot be negative")
        task = TrackedTask(transfer, expected_finish, chunk_key)
        self.tasks.append(task)
        return task

    def _prune(self, task: TrackedTask) -> bool:
        """Count and drop a finished task; False if it is still live."""
        if task.transfer.done:
            self.completed_count += 1
            return True
        if task.transfer.cancelled:
            self.cancelled_count += 1
            return True
        return False

    def delayed_tasks(self, now: float) -> list[TrackedTask]:
        """Live tasks whose finish time exceeded expectation + threshold.

        Side effect: done/cancelled tasks encountered by the scan are
        dropped (their counts accumulate in ``completed_count`` /
        ``cancelled_count``), keeping repeated checks proportional to the
        live task set instead of the whole run's history.
        """
        live: list[TrackedTask] = []
        delayed: list[TrackedTask] = []
        for task in self.tasks:
            if self._prune(task):
                continue
            live.append(task)
            if now > task.expected_finish + self.threshold:
                delayed.append(task)
        self.tasks = live
        return delayed

    def pending_tasks(self) -> list[TrackedTask]:
        """Tracked tasks that are neither done nor cancelled."""
        return [
            t
            for t in self.tasks
            if not t.transfer.done and not t.transfer.cancelled
        ]

    def clear_finished(self) -> None:
        """Forget tasks that completed (phase-boundary housekeeping)."""
        live = []
        for task in self.tasks:
            if not self._prune(task):
                live.append(task)
        self.tasks = live
