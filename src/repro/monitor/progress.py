"""Repair-progress tracking and straggler detection (Section III-C).

Every repair task carries an *expectation* — the time by which it should
finish given the idle bandwidth at dispatch. The tracker flags tasks
whose completion has slipped past the expectation by more than a
threshold; ChameleonEC reacts with transmission re-ordering and repair
re-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.transfers import Transfer


@dataclass
class TrackedTask:
    """One repair task (a transfer) plus its expected completion time."""

    transfer: Transfer
    expected_finish: float
    chunk_key: object = None  # which failed chunk this task serves

    def is_delayed(self, now: float, threshold: float) -> bool:
        """True when the task overran its expectation by > threshold."""
        if self.transfer.done or self.transfer.cancelled:
            return False
        return now > self.expected_finish + threshold


@dataclass
class ProgressTracker:
    """Collects tracked tasks and reports stragglers."""

    threshold: float = 2.0
    tasks: list[TrackedTask] = field(default_factory=list)

    def track(self, transfer: Transfer, expected_finish: float, chunk_key=None) -> TrackedTask:
        """Register a task with its expected completion time."""
        if expected_finish < 0:
            raise SimulationError("expectation cannot be negative")
        task = TrackedTask(transfer, expected_finish, chunk_key)
        self.tasks.append(task)
        return task

    def delayed_tasks(self, now: float) -> list[TrackedTask]:
        """All live tasks whose finish time exceeded expectation + threshold."""
        return [t for t in self.tasks if t.is_delayed(now, self.threshold)]

    def pending_tasks(self) -> list[TrackedTask]:
        """Tracked tasks that are neither done nor cancelled."""
        return [
            t
            for t in self.tasks
            if not t.transfer.done and not t.transfer.cancelled
        ]

    def clear_finished(self) -> None:
        """Forget tasks that completed (phase-boundary housekeeping)."""
        self.tasks = [t for t in self.tasks if not t.transfer.done]
