"""Bandwidth and repair-progress monitoring."""

from repro.monitor.bandwidth import BandwidthMonitor
from repro.monitor.progress import ProgressTracker, TrackedTask

__all__ = ["BandwidthMonitor", "ProgressTracker", "TrackedTask"]
