"""Bandwidth, reachability, and repair-progress monitoring."""

from repro.monitor.bandwidth import BandwidthMonitor
from repro.monitor.failure_detector import FailureDetector
from repro.monitor.progress import ProgressTracker, TrackedTask

__all__ = [
    "BandwidthMonitor",
    "FailureDetector",
    "ProgressTracker",
    "TrackedTask",
]
