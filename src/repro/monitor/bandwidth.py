"""Periodic link/disk bandwidth monitoring (the coordinator's eyes).

The paper's coordinator learns each node's idle bandwidth "by either
periodically monitoring or pre-limiting by the system" (Section III-A).
This monitor plays the NetHogs role: every ``window`` seconds it samples
the byte counters of every node resource and derives the average
foreground bandwidth of the last window; idle bandwidth is capacity
minus that.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.cluster.topology import Cluster
from repro.errors import SimulationError
from repro.metrics.linkstats import REPAIR_TAG
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.sim.resources import Resource

#: Fraction of capacity always assumed available: even a saturated link
#: drains eventually, and estimates must never divide by zero.
_IDLE_FLOOR = 0.02


class BandwidthMonitor:
    """Windowed foreground-bandwidth estimates for every node resource."""

    def __init__(self, cluster: Cluster, window: float = 5.0) -> None:
        if window <= 0:
            raise SimulationError("monitor window must be positive")
        self.cluster = cluster
        self.window = window
        self._foreground_bw: dict[str, float] = {}
        self._last_counts: dict[str, float] = {}
        self._last_sample_time = cluster.sim.now
        self._started = False
        self._resources: list[Resource] = []
        for node in cluster.storage_nodes + cluster.clients:
            self._resources.extend(node.all_resources())
        for res in self._resources:
            self._last_counts[res.name] = self._foreground_bytes(res)
            self._foreground_bw[res.name] = 0.0

    @staticmethod
    def _foreground_bytes(res: Resource) -> float:
        """Bytes moved by anything that is not repair traffic."""
        return res.total_bytes - res.bytes_for(REPAIR_TAG)

    def start(self) -> None:
        """Begin periodic sampling."""
        if self._started:
            return
        self._started = True
        self.cluster.sim.schedule(self.window, self._tick)

    def _tick(self) -> None:
        self.sample()
        self.cluster.sim.schedule(self.window, self._tick)

    def sample(self) -> None:
        """Close the current window and refresh all estimates.

        May also be called on demand (e.g. before re-planning around a
        straggler); the divisor is the actual elapsed time, so irregular
        sampling never skews the estimates.
        """
        elapsed = self.cluster.sim.now - self._last_sample_time
        if elapsed <= 0:
            return
        self._last_sample_time = self.cluster.sim.now
        self.cluster.flows.settle_now()
        tracer = get_tracer()
        registry = get_registry()
        for res in self._resources:
            current = self._foreground_bytes(res)
            delta = current - self._last_counts[res.name]
            self._last_counts[res.name] = current
            self._foreground_bw[res.name] = delta / elapsed
            if tracer.enabled:
                # One counter series per resource track: the viewer plots
                # each uplink/downlink/disk's foreground bandwidth over time.
                tracer.counter(
                    "bw.foreground", self._foreground_bw[res.name], track=res.name
                )
        if tracer.enabled:
            tracer.instant(
                "monitor.sampled", track="monitor", elapsed=elapsed,
                resources=len(self._resources),
            )
        if registry.enabled:
            registry.counter("monitor.samples").inc()
            histogram = registry.histogram("monitor.foreground_bw")
            for res in self._resources:
                histogram.observe(self._foreground_bw[res.name])

    def foreground_bw(self, res: Resource) -> float:
        """Average foreground bandwidth of the last window (bytes/s)."""
        return self._foreground_bw.get(res.name, 0.0)

    def idle_bw(self, res: Resource) -> float:
        """Estimated unoccupied bandwidth of ``res`` (never below a floor)."""
        idle = res.capacity - self.foreground_bw(res)
        return max(idle, _IDLE_FLOOR * res.capacity)

    # Node-level convenience accessors used by the dispatcher.

    def idle_uplink(self, node: Node) -> float:
        """Estimated unoccupied uplink bandwidth of ``node`` (B/s)."""
        return self.idle_bw(node.uplink)

    def idle_downlink(self, node: Node) -> float:
        """Estimated unoccupied downlink bandwidth of ``node`` (B/s)."""
        return self.idle_bw(node.downlink)

    def idle_disk_read(self, node: Node) -> float:
        """Estimated unoccupied disk-read bandwidth of ``node`` (B/s)."""
        return self.idle_bw(node.disk_read)

    def idle_disk_write(self, node: Node) -> float:
        """Estimated unoccupied disk-write bandwidth of ``node`` (B/s)."""
        return self.idle_bw(node.disk_write)
