"""Accrual failure detection over simulated heartbeats.

Timeout-only failure handling makes a partitioned helper cost a full
``chunk_timeout`` per retry — the dominant repair-tail term under
network partitions (see PAPERS.md: repair pipelining treats straggling
or unreachable helpers as the tail driver). The
:class:`FailureDetector` closes that gap with an accrual detector in
the phi-detector family: every monitored node emits a heartbeat each
``heartbeat_interval`` of virtual time toward an observer ("home")
node, over the same partitionable links all data flows use. A
heartbeat is delivered only when the sender is alive, currently
reachable from home, and its uplink is not throttled below
``min_heartbeat_capacity`` of its base capacity — so crashes,
partitions, and deep stragglers all starve the heartbeat stream.

Suspicion accrues instead of toggling: the detector keeps a sliding
window of observed inter-arrival times per node and computes

    phi(node) = (now - last_arrival) / mean(window)

A node is *suspected* when phi crosses ``threshold`` (i.e. roughly
``threshold`` expected heartbeats have gone missing) and *restored*
the moment a heartbeat arrives again. Because this is a simulation,
each suspicion is also classified against ground truth at fire time: a
suspect that is actually alive and reachable (a straggler whose
heartbeats were throttled away) counts toward
``monitor.false_suspicions`` — the detector's precision is itself a
measured quantity.

Consumers: :meth:`repro.cluster.failures.FailureInjector` accepts the
detector's :meth:`is_suspected` as a best-effort planning filter, and
the repair drivers fail in-flight instances touching a fresh suspect
(``helper_suspected``) so re-planning happens *before* the chunk
timeout fires.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.topology import Cluster
from repro.errors import SimulationError
from repro.events import HookEmitter
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer


class FailureDetector(HookEmitter):
    """Virtual-time accrual (phi) detector fed by simulated heartbeats."""

    HOOK_EVENTS = ("suspect", "restore")

    def __init__(
        self,
        cluster: Cluster,
        *,
        heartbeat_interval: float = 0.5,
        threshold: float = 3.0,
        window: int = 8,
        home: int | None = None,
        min_heartbeat_capacity: float = 0.05,
    ) -> None:
        if heartbeat_interval <= 0:
            raise SimulationError("heartbeat interval must be positive")
        if threshold <= 1.0:
            raise SimulationError("suspicion threshold must exceed 1")
        if window < 1:
            raise SimulationError("inter-arrival window must be >= 1")
        if not 0 <= min_heartbeat_capacity < 1:
            raise SimulationError(
                "min_heartbeat_capacity must lie in [0, 1)"
            )
        self.cluster = cluster
        self.heartbeat_interval = float(heartbeat_interval)
        self.threshold = float(threshold)
        self.window = int(window)
        if home is None:
            home = (
                cluster.clients[0].id
                if cluster.clients
                else cluster.storage_nodes[0].id
            )
        self.home = cluster.node(home).id
        self.min_heartbeat_capacity = float(min_heartbeat_capacity)
        #: node id -> virtual time its suspicion started (insertion order
        #: is suspicion order, keeping consumers deterministic).
        self.suspected: dict[int, float] = {}
        #: every (at, node_id, false_positive) suspicion ever raised.
        self.suspicions: list[tuple[float, int, bool]] = []
        self.false_suspicions = 0
        self.started = False
        self._last_arrival: dict[int, float] = {}
        self._intervals: dict[int, deque[float]] = {}
        self._base_uplink: dict[int, float] = {}
        self._stopped = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "FailureDetector":
        """Begin observing heartbeats from every storage node."""
        if self.started:
            raise SimulationError("failure detector already started")
        self.started = True
        now = self.cluster.sim.now
        for node in self.cluster.storage_nodes:
            if node.id == self.home:
                continue
            self._last_arrival[node.id] = now
            self._intervals[node.id] = deque(maxlen=self.window)
            self._base_uplink[node.id] = node.uplink.capacity
        self.cluster.sim.schedule(self.heartbeat_interval, self._tick)
        return self

    def stop(self) -> None:
        """Stop observing (pending ticks become no-ops)."""
        self._stopped = True

    # -- queries --------------------------------------------------------------

    def is_suspected(self, node_id: int) -> bool:
        """Whether the detector currently distrusts ``node_id``."""
        return node_id in self.suspected

    def suspected_nodes(self) -> list[int]:
        """Currently suspected node ids, in suspicion order."""
        return list(self.suspected)

    def phi(self, node_id: int) -> float:
        """The node's current accrual level, in expected-heartbeat units."""
        last = self._last_arrival.get(node_id)
        if last is None:
            return 0.0
        intervals = self._intervals[node_id]
        mean = (
            sum(intervals) / len(intervals)
            if intervals
            else self.heartbeat_interval
        )
        return (self.cluster.sim.now - last) / mean

    # -- internals ------------------------------------------------------------

    def _delivered(self, node_id: int) -> bool:
        node = self.cluster.node(node_id)
        if not node.alive:
            return False
        if not self.cluster.reachable(node_id, self.home):
            return False
        base = self._base_uplink[node_id]
        return node.uplink.capacity >= self.min_heartbeat_capacity * base

    def _ground_truth_ok(self, node_id: int) -> bool:
        node = self.cluster.node(node_id)
        return node.alive and self.cluster.reachable(node_id, self.home)

    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.cluster.sim.now
        for node_id in self._last_arrival:
            if self._delivered(node_id):
                self._intervals[node_id].append(
                    now - self._last_arrival[node_id]
                )
                self._last_arrival[node_id] = now
                if node_id in self.suspected:
                    self._restore(node_id, now)
            elif (
                node_id not in self.suspected
                and self.phi(node_id) >= self.threshold
            ):
                self._suspect(node_id, now)
        self.cluster.sim.schedule(self.heartbeat_interval, self._tick)

    def _suspect(self, node_id: int, now: float) -> None:
        false_positive = self._ground_truth_ok(node_id)
        self.suspected[node_id] = now
        self.suspicions.append((now, node_id, false_positive))
        if false_positive:
            self.false_suspicions += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("monitor.suspicions").inc()
            if false_positive:
                registry.counter("monitor.false_suspicions").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "detector.suspect",
                track="faults",
                node=node_id,
                false_positive=false_positive,
            )
        self.emit("suspect", self, node_id=node_id, false_positive=false_positive)

    def _restore(self, node_id: int, now: float) -> None:
        del self.suspected[node_id]
        registry = get_registry()
        if registry.enabled:
            registry.counter("monitor.suspicions_cleared").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant("detector.restore", track="faults", node=node_id)
        self.emit("restore", self, node_id=node_id)
