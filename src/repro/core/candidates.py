"""Which survivors may serve a repair, and how many must participate."""

from __future__ import annotations

from repro.codes.base import ErasureCode
from repro.codes.rs import RSCode
from repro.errors import SchedulingError


def repair_candidates(
    code: ErasureCode, failed_index: int, survivors: dict[int, int]
) -> tuple[dict[int, int], int]:
    """(candidate chunk-index -> node-id, required source count).

    For MDS codes (RS) any ``k`` of the survivors decode, so every
    survivor is a candidate and the dispatcher is free to pick the best
    k. Structural codes (LRC local groups, Butterfly recipes) fix the
    source set: the candidates *are* the required sources.
    """
    if isinstance(code, RSCode):
        if len(survivors) < code.k:
            raise SchedulingError(
                f"{code.name}: {len(survivors)} survivors cannot repair chunk "
                f"{failed_index} (need {code.k})"
            )
        return dict(survivors), code.k
    equation = code.repair_equation(failed_index, set(survivors))
    chosen = {idx: survivors[idx] for idx in equation.sources}
    return chosen, len(chosen)
