"""Task bookkeeping for ChameleonEC's phase-based dispatch."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.cluster.stripes import ChunkId


class PhaseLoad:
    """Per-phase, per-node counters of assigned upload/download tasks.

    These are the ``T_up^i`` / ``T_down^i`` of Section III-A; they
    accumulate across all chunks admitted into the current phase so that
    later chunks steer around already-loaded nodes.
    """

    def __init__(self) -> None:
        self.up: Counter = Counter()
        self.down: Counter = Counter()

    def reset(self) -> None:
        """Clear all per-node task counters (a new phase begins)."""
        self.up.clear()
        self.down.clear()

    def snapshot(self) -> tuple[Counter, Counter]:
        """A copy of (up, down) counters for admission rollback."""
        return Counter(self.up), Counter(self.down)

    def restore(self, snap: tuple[Counter, Counter]) -> None:
        """Roll the counters back to a prior :meth:`snapshot`."""
        self.up, self.down = Counter(snap[0]), Counter(snap[1])


@dataclass
class ChunkDispatch:
    """Outcome of dispatching one chunk's 2k repair tasks (Section III-A).

    ``source_downloads`` maps each participating *source* node to the
    number of download tasks it received (relays have >= 1); nodes with
    zero downloads upload their raw chunk. ``dest_downloads`` is the
    destination's download-task count. ``chunk_indices`` maps each
    participating node to the stripe chunk index it serves.
    """

    chunk: ChunkId
    destination: int
    participants: list[int]
    chunk_indices: dict[int, int]
    source_downloads: dict[int, int] = field(default_factory=dict)
    dest_downloads: int = 1
    estimated_time: float = 0.0
    read_fraction: float = 1.0

    @property
    def relays(self) -> list[int]:
        """Source nodes that download (and hence combine) chunks."""
        return sorted(n for n, d in self.source_downloads.items() if d > 0)

    @property
    def total_downloads(self) -> int:
        """All download tasks of this chunk (sources + destination)."""
        return sum(self.source_downloads.values()) + self.dest_downloads

    @property
    def total_uploads(self) -> int:
        """All upload tasks (exactly one per participating source)."""
        return len(self.participants)
