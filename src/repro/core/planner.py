"""Tunable repair-plan establishment — Algorithm 1 (Section III-B).

Given the task distribution of one chunk (how many download tasks each
participating source received, and how many the destination holds), the
planner pairs upload tasks with download tasks to produce transmission
paths. Sources with all downloads satisfied and an unpaired upload live
in the eligible set ``E``; each pairing step connects a node popped from
``E`` to the source with the fewest unpaired downloads; leftovers upload
straight to the destination. The result is the parent map of a
:class:`repro.repair.plan.RepairPlan`.
"""

from __future__ import annotations

from repro.cluster.failures import FailureInjector
from repro.codes.base import ErasureCode
from repro.errors import SchedulingError
from repro.repair.plan import PlanSource, RepairPlan
from repro.core.tasks import ChunkDispatch


def build_parent_map(dispatch: ChunkDispatch) -> dict[int, int]:
    """Pair uploads and downloads into transmission paths (Algorithm 1)."""
    sources = list(dispatch.participants)
    unpaired_down = {n: dispatch.source_downloads.get(n, 0) for n in sources}
    parent: dict[int, int] = {}

    # E: unpaired upload + no (remaining) downloads. Every source has
    # exactly one upload task, so membership is "no parent assigned yet".
    eligible = [n for n in sources if unpaired_down[n] == 0]

    while sum(unpaired_down.values()) > 0:
        # The source with the fewest unpaired downloads (Line 5).
        receivers = [n for n in sources if unpaired_down[n] > 0]
        target = min(receivers, key=lambda n: (unpaired_down[n], n))
        if not eligible:
            raise SchedulingError(
                f"Algorithm 1 stalled pairing tasks for {dispatch.chunk}: "
                "no eligible uploader (dispatch produced an invalid distribution)"
            )
        uploader = eligible.pop(0)
        parent[uploader] = target
        unpaired_down[target] -= 1
        if unpaired_down[target] == 0:
            eligible.append(target)

    # Remaining uploads feed the destination (Lines 12-16).
    for node in eligible:
        parent[node] = dispatch.destination

    dest_edges = sum(1 for v in parent.values() if v == dispatch.destination)
    if dest_edges != dispatch.dest_downloads:
        raise SchedulingError(
            f"plan for {dispatch.chunk} gives the destination {dest_edges} "
            f"downloads, dispatch assigned {dispatch.dest_downloads}"
        )
    return parent


def build_plan(
    dispatch: ChunkDispatch,
    code: ErasureCode,
    injector: FailureInjector,
) -> RepairPlan:
    """Full tunable plan: Algorithm 1 structure + decoding coefficients."""
    available = set(dispatch.chunk_indices.values())
    equation = code.repair_equation(dispatch.chunk.index, available)
    coeff_by_index = dict(equation.coefficients)
    sources = []
    for node, idx in sorted(dispatch.chunk_indices.items()):
        sources.append(
            PlanSource(
                node_id=node,
                chunk_index=idx,
                coefficient=coeff_by_index.get(idx, 0),
            )
        )
    parent = build_parent_map(dispatch)
    if not code.supports_partial_combine:
        parent = {node: dispatch.destination for node in dispatch.chunk_indices}
    return RepairPlan(
        chunk=dispatch.chunk,
        destination=dispatch.destination,
        sources=sources,
        read_fraction=equation.read_fraction,
        parent=parent,
    )
