"""ChameleonEC-IO: the storage-bottlenecked variant (Section III-D, Exp#12).

When disks, not links, are the bottleneck, the coordinator monitors
storage-bandwidth consumption and dispatches the read/write tasks based
on idle *disk* bandwidth. Everything else (Algorithm 1 planning,
straggler re-scheduling) is unchanged.
"""

from __future__ import annotations

from repro.core.chameleon import ChameleonRepair


class ChameleonRepairIO(ChameleonRepair):
    """ChameleonEC with dispatch driven by idle storage bandwidth."""

    name = "ChameleonEC-IO"

    def __init__(self, *args, **kwargs) -> None:
        kwargs["io_aware"] = True
        super().__init__(*args, **kwargs)
