"""The ChameleonEC coordinator: phases, dispatch, plans, re-scheduling.

Brings the three design techniques together (Section III):

* the repair is cut into *phases* of ``t_phase`` seconds; each phase
  admits as many failed chunks as the idle bandwidth is estimated to
  absorb (Section III-A);
* every admitted chunk gets a tunable plan from Algorithm 1
  (Section III-B);
* while a phase runs, progress checks detect stragglers and react with
  transmission re-ordering and repair re-tuning (Section III-C).

Multi-node failures are handled by the three Section III-D orderings:
``sequential`` (node after node), ``priority`` (stripes with more failed
chunks first) and ``fastest`` (cheapest repairs first).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.cluster.failures import FailureInjector
from repro.cluster.stripes import ChunkId, StripeStore
from repro.cluster.topology import Cluster
from repro.errors import ReproError, SchedulingError
from repro.events import HookEmitter
from repro.faults.outcomes import ToleranceExceeded
from repro.metrics.throughput import RepairThroughputMeter
from repro.monitor.bandwidth import BandwidthMonitor
from repro.monitor.progress import ProgressTracker, TrackedTask
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.repair.instance import PlanInstance
from repro.core.dispatch import TaskDispatcher
from repro.core.planner import build_plan

MULTI_NODE_POLICIES = ("sequential", "priority", "fastest")


class ChameleonRepair(HookEmitter):
    """Coordinator driving low-interference repair of a chunk batch.

    Events (see :class:`repro.events.HookEmitter`): ``all_done``,
    ``chunk_repaired``, ``chunk_failed``, ``retry``, ``chunk_lost``,
    ``tolerance_exceeded``, ``chunks_added``. Every callback receives the
    coordinator as its first positional argument.
    """

    name = "ChameleonEC"

    HOOK_EVENTS = (
        "all_done",
        "chunk_repaired",
        "chunk_failed",
        "retry",
        "chunk_lost",
        "tolerance_exceeded",
        "chunks_added",
    )

    def __init__(
        self,
        cluster: Cluster,
        store: StripeStore,
        injector: FailureInjector,
        monitor: BandwidthMonitor,
        *,
        chunk_size: float,
        slice_size: float,
        t_phase: float = 20.0,
        check_interval: float = 1.0,
        straggler_threshold: float = 2.0,
        enable_reordering: bool = True,
        enable_retuning: bool = True,
        io_aware: bool = False,
        multi_node_policy: str = "priority",
        final_write: bool = True,
        max_inflight: int = 8,
        max_retries: int = 3,
        retry_backoff: float = 0.5,
        max_backoff: float | None = None,
        retry_jitter: float = 0.0,
        jitter_seed: int = 0,
        chunk_timeout: float | None = None,
        hedge=None,
        journal=None,
    ) -> None:
        if t_phase <= 0:
            raise SchedulingError("t_phase must be positive")
        if multi_node_policy not in MULTI_NODE_POLICIES:
            raise SchedulingError(
                f"unknown multi-node policy {multi_node_policy!r}; "
                f"choose from {MULTI_NODE_POLICIES}"
            )
        self.cluster = cluster
        self.store = store
        self.injector = injector
        self.monitor = monitor
        self.chunk_size = chunk_size
        self.slice_size = slice_size
        self.t_phase = t_phase
        self.check_interval = check_interval
        self.enable_reordering = enable_reordering
        self.enable_retuning = enable_retuning
        self.multi_node_policy = multi_node_policy
        self.final_write = final_write
        if max_inflight < 1:
            raise SchedulingError("max_inflight must be at least 1")
        self.max_inflight = max_inflight
        if max_retries < 0:
            raise SchedulingError("max_retries cannot be negative")
        if retry_backoff <= 0:
            raise SchedulingError("retry_backoff must be positive")
        if max_backoff is not None and max_backoff <= 0:
            raise SchedulingError("max_backoff must be positive (or None)")
        if not 0 <= retry_jitter < 1:
            raise SchedulingError("retry_jitter must lie in [0, 1)")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise SchedulingError("chunk_timeout must be positive")
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: Ceiling on the exponential retry delay (None = uncapped).
        self.max_backoff = max_backoff
        #: Seeded symmetric jitter fraction on the retry backoff
        #: (delay *= 1 ± U(0, retry_jitter), still capped by
        #: ``max_backoff``). 0 disables it and draws nothing from the
        #: RNG, keeping disabled runs byte-identical.
        self.retry_jitter = retry_jitter
        self._jitter_rng = (
            np.random.default_rng(jitter_seed) if retry_jitter > 0 else None
        )
        self.chunk_timeout = chunk_timeout
        #: Optional :class:`repro.repair.hedging.HedgePolicy`: an
        #: in-flight chunk running past the hedge delay races a backup
        #: plan built around its slowest helper (None = hedging off).
        self.hedge = hedge
        #: Optional :class:`repro.journal.Journal` written through at
        #: every state transition (None = durability off).
        self.journal = journal
        self.dispatcher = TaskDispatcher(
            injector, monitor, chunk_size=chunk_size, io_aware=io_aware
        )
        self.tracker = ProgressTracker(threshold=straggler_threshold)
        self.meter = RepairThroughputMeter()
        #: Fired as (chunk, final plan) when a chunk's repair completes;
        #: the data plane subscribes here to move real bytes.
        self.on_chunk_repaired: list = []
        self.pending: list[ChunkId] = []
        self.in_flight: dict[ChunkId, PlanInstance] = {}
        self.completed: list[ChunkId] = []
        self.lost: list[ChunkId] = []
        #: chunk -> live backup instance racing the primary.
        self._hedges: dict[ChunkId, PlanInstance] = {}
        self.hedges_launched = 0
        self.hedges_won = 0
        self.suspect_replans = 0
        self.retries = 0
        self.tolerance_exceeded: ToleranceExceeded | None = None
        self._attempts: dict[ChunkId, int] = {}
        self._retry_wait: set[ChunkId] = set()
        self._stripes_busy: set[int] = set()
        self._paused: list[PlanInstance] = []
        self._started = False
        self._finished = False
        self._crashed = False
        self._phase_admitted = 0
        self._phase_budget_exhausted = False
        self._replanned: set[ChunkId] = set()
        self.phase_index = 0
        self.retunes = 0
        self.reorders = 0
        self.replans = 0
        self._phase_span = None
        self._phase_baseline = (0, 0, 0)

    # -- public API --------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once every requested chunk is repaired."""
        return self._finished

    @property
    def crashed(self) -> bool:
        """True after :meth:`crash` — the coordinator is permanently inert."""
        return self._crashed

    def repair(self, chunks: list[ChunkId]) -> None:
        """Begin phase-based repair of ``chunks`` (then run the simulator)."""
        if self._started:
            raise SchedulingError("coordinator already started")
        self._started = True
        self.pending = self._order_chunks(list(chunks))
        if self.journal is not None:
            self.journal.coordinator_started()
            for chunk in self.pending:
                self.journal.chunk_enqueued(chunk)
        self.meter.start(self.cluster.sim.now)
        if not self.pending:
            self._finish()
            return
        self._start_phase()

    def add_chunks(self, chunks: list[ChunkId]) -> list[ChunkId]:
        """Adopt newly failed chunks mid-run (a crash created more work).

        Chunks already pending, in flight, awaiting a retry, or written
        off as lost are skipped; a chunk repaired earlier onto the crashed
        node returns from ``completed`` to the work queue. If the batch
        had already finished, the phase machinery restarts. Returns the
        chunks actually adopted.
        """
        if self._crashed:
            # A dead coordinator adopts nothing; the journal already
            # holds whatever was in flight, and recovery will requeue it.
            return []
        if not self._started:
            raise SchedulingError("coordinator not started; pass chunks to repair()")
        busy = (
            set(self.pending)
            | set(self.in_flight)
            | self._retry_wait
            | set(self.lost)
        )
        adopted = [c for c in chunks if c not in busy]
        if not adopted:
            return []
        for chunk in adopted:
            if chunk in self.completed:
                self.completed.remove(chunk)
            self._replanned.discard(chunk)
            if self.journal is not None:
                self.journal.chunk_enqueued(chunk)
        self.pending = self._order_chunks(self.pending + adopted)
        self.emit("chunks_added", self, chunks=list(adopted))
        if self._finished:
            self._finished = False
            self.meter.finished_at = None
            self._start_phase()
        else:
            self._admit_chunks()
        return adopted

    def set_concurrency(self, concurrency: int) -> None:
        """Retarget ``max_inflight`` mid-run (the controller's knob).

        ChameleonEC's phase machinery already admits chunks against the
        idle-bandwidth budget; this cap bounds concurrent reconstruction
        streams on top of it. Lowering never cancels in-flight repairs;
        raising re-runs admission so freed slots fill from the queue.
        """
        if concurrency < 1:
            raise SchedulingError("max_inflight must be at least 1")
        raised = concurrency > self.max_inflight
        self.max_inflight = concurrency
        if raised and self._started and not self._crashed and not self._finished \
                and self.pending:
            self._admit_chunks()

    def crash(self) -> None:
        """Tear the coordinator down mid-run (control-plane crash).

        Cancels every in-flight plan instance *silently* — a dead
        coordinator must not run its own retry or straggler logic —
        which kills all their live transfers, then empties the phase and
        tracking state so every pending timer (phase ends, progress
        checks, retry backoffs, watchdogs) fires into a no-op. The
        journal (if any) is NOT fenced here: fencing is written by
        whoever observes the crash (see ``Journal.fence``).
        """
        if self._crashed:
            return
        self._crashed = True
        for instance in list(self.in_flight.values()):
            instance.cancel()
        for backup in list(self._hedges.values()):
            backup.cancel()
        self._hedges.clear()
        self.in_flight.clear()
        self.pending.clear()
        self._retry_wait.clear()
        self._stripes_busy.clear()
        self._paused.clear()
        self.tracker.tasks.clear()
        self._close_phase_span()

    # -- chunk ordering (Section III-D) -------------------------------------------

    def _order_chunks(self, chunks: list[ChunkId]) -> list[ChunkId]:
        if self.multi_node_policy == "sequential" or len(chunks) < 2:
            return chunks
        if self.multi_node_policy == "priority":
            # Stripes with more failed chunks are the most exposed: give
            # their chunks higher repair priority.
            per_stripe = Counter(c.stripe for c in chunks)
            return sorted(
                chunks, key=lambda c: (-per_stripe[c.stripe], c.stripe, c.index)
            )
        # "fastest": fewest required sources first (cheapest repair).
        def cost(chunk: ChunkId) -> float:
            """Repair traffic (chunk units) as the priority key."""
            survivors = self.injector.surviving_sources(chunk)
            try:
                eq = self.store.code.repair_equation(chunk.index, set(survivors))
            except Exception:
                return float("inf")
            return eq.traffic_chunks

        return sorted(chunks, key=lambda c: (cost(c), c.stripe, c.index))

    # -- phase machinery -----------------------------------------------------------

    def _start_phase(self) -> None:
        if self._finished or self._crashed:
            return
        self.phase_index += 1
        self.dispatcher.begin_phase()
        self._phase_admitted = 0
        self._phase_budget_exhausted = False
        tracer = get_tracer()
        if tracer.enabled:
            self._phase_span = tracer.span(
                "phase", track="scheduler", index=self.phase_index
            )
            self._phase_baseline = (len(self.completed), self.retunes, self.reorders)
        self._admit_chunks()
        phase_end = self.cluster.sim.now + self.t_phase
        self.cluster.sim.schedule(self.check_interval, self._progress_check, phase_end)
        self.cluster.sim.call_at(phase_end, self._end_phase)

    def _admit_chunks(self) -> None:
        """Continuously select failed chunks into the running phase.

        Section III-A: chunks are admitted one at a time until the
        accumulated (per-node) estimated repair time would exceed
        T_phase. An in-flight cap bounds concurrent chunk repairs, the
        same reconstruction-stream limit real systems apply; completed
        chunks free slots for further admissions within the same phase.
        """
        if self._crashed:
            return
        remaining: list[ChunkId] = []
        pending = list(self.pending)
        self.pending = []
        for i, chunk in enumerate(pending):
            if (
                self._phase_budget_exhausted
                or len(self.in_flight) >= self.max_inflight
            ):
                remaining.extend(pending[i:])
                break
            if chunk.stripe in self._stripes_busy:
                remaining.append(chunk)
                continue
            if not self.injector.is_repairable(chunk):
                # Crashes took more of this stripe than the code
                # tolerates: re-queueing would spin forever.
                self._mark_lost(chunk)
                continue
            snap = self.dispatcher.load.snapshot()
            try:
                dispatch = self.dispatcher.dispatch_chunk(chunk, self.store.code)
            except SchedulingError:
                remaining.append(chunk)
                continue
            if dispatch.estimated_time > self.t_phase and self._phase_admitted > 0:
                # Would overrun the phase: try again next phase. (The
                # first chunk is always admitted, otherwise a chunk whose
                # lone repair exceeds t_phase would starve forever.)
                self.dispatcher.load.restore(snap)
                remaining.append(chunk)
                remaining.extend(pending[i + 1 :])
                self._phase_budget_exhausted = True
                break
            self._launch(dispatch)
            self._phase_admitted += 1
        self.pending = remaining + self.pending
        self._maybe_finish()

    def _launch(self, dispatch) -> None:
        plan = build_plan(dispatch, self.store.code, self.injector)
        self.store.relocate(dispatch.chunk, plan.destination)
        self._stripes_busy.add(dispatch.chunk.stripe)
        self._attempts[dispatch.chunk] = self._attempts.get(dispatch.chunk, 0) + 1
        if self.journal is not None:
            self.journal.plan_chosen(
                dispatch.chunk,
                destination=plan.destination,
                sources=[s.node_id for s in plan.sources],
                attempt=self._attempts[dispatch.chunk],
            )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "plan.chosen",
                track="scheduler",
                chunk=str(dispatch.chunk),
                destination=plan.destination,
                relays=sorted(dispatch.source_downloads),
                uploaders=dispatch.participants,
                estimated_time=dispatch.estimated_time,
                phase=self.phase_index,
                attempt=self._attempts[dispatch.chunk],
            )
        instance = PlanInstance(
            self.cluster,
            plan,
            chunk_size=self.chunk_size,
            slice_size=self.slice_size,
            final_write=self.final_write,
            on_complete=lambda inst, c=dispatch.chunk: self._chunk_done(c, inst),
            on_failed=lambda inst, reason, c=dispatch.chunk: self._instance_failed(
                c, inst, reason
            ),
        )
        self.in_flight[dispatch.chunk] = instance
        instance.start()
        if self.journal is not None:
            self.journal.reads_issued(dispatch.chunk, transfers=len(instance.uploads))
        if self.chunk_timeout is not None:
            self.cluster.sim.schedule(
                self.chunk_timeout, self._check_timeout, dispatch.chunk, instance
            )
        if self.hedge is not None:
            self.cluster.sim.schedule(
                self.hedge.delay(), self._maybe_hedge, dispatch.chunk, instance
            )
        expectation = self.cluster.sim.now + max(
            dispatch.estimated_time, self.check_interval
        )
        for transfer in instance.uploads.values():
            self.tracker.track(transfer, expectation, chunk_key=instance)

    # -- hedged reads ------------------------------------------------------------

    def _slowest_helper(self, instance: PlanInstance) -> int | None:
        """The uploader making the least relative progress (ties: lowest id)."""
        slowest, worst = None, None
        for node_id in sorted(instance.uploads):
            transfer = instance.uploads[node_id]
            if transfer.done:
                continue
            fraction = transfer.bytes_completed / transfer.size
            if worst is None or fraction < worst:
                slowest, worst = node_id, fraction
        return slowest

    def _maybe_hedge(self, chunk: ChunkId, instance: PlanInstance) -> None:
        """Hedge-delay watchdog: race a backup plan against a slow repair."""
        if self._crashed or self.hedge is None:
            return
        if self.in_flight.get(chunk) is not instance or instance.done:
            return
        if chunk in self._hedges:
            return
        slow = self._slowest_helper(instance)
        if slow is None:
            return
        snap = self.dispatcher.load.snapshot()
        self.injector.excluded.add(slow)
        try:
            dispatch = self.dispatcher.dispatch_chunk(chunk, self.store.code)
            plan = build_plan(dispatch, self.store.code, self.injector)
        except (SchedulingError, ReproError):
            self.dispatcher.load.restore(snap)
            return
        finally:
            self.injector.excluded.discard(slow)
        same_sources = [s.node_id for s in plan.sources] == [
            s.node_id for s in instance.plan.sources
        ]
        if same_sources and plan.destination == instance.plan.destination:
            # The dispatcher found nothing better; hedging the identical
            # plan would only double the load it is meant to avoid.
            self.dispatcher.load.restore(snap)
            return
        self.store.relocate(chunk, plan.destination)
        if self.journal is not None:
            self.journal.plan_chosen(
                chunk,
                destination=plan.destination,
                sources=[s.node_id for s in plan.sources],
                attempt=self._attempts.get(chunk, 1),
            )
        backup = PlanInstance(
            self.cluster,
            plan,
            chunk_size=self.chunk_size,
            slice_size=self.slice_size,
            final_write=self.final_write,
            on_complete=lambda inst, c=chunk: self._hedge_done(c, inst),
            on_failed=lambda inst, reason, c=chunk: self._hedge_failed(
                c, inst, reason
            ),
        )
        self._hedges[chunk] = backup
        self.hedges_launched += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.hedges.launched").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "repair.hedge",
                track="scheduler",
                chunk=str(chunk),
                excluded=slow,
                destination=plan.destination,
            )
        backup.start()
        if self.chunk_timeout is not None:
            self.cluster.sim.schedule(
                self.chunk_timeout, self._check_hedge_timeout, chunk, backup
            )

    def _check_hedge_timeout(self, chunk: ChunkId, backup: PlanInstance) -> None:
        if self._crashed or self._hedges.get(chunk) is not backup or backup.done:
            return
        backup.fail("hedged read timed out")

    def _hedge_done(self, chunk: ChunkId, backup: PlanInstance) -> None:
        """The backup won the race: it becomes the chunk's repair."""
        if self._crashed or self._hedges.get(chunk) is not backup:
            return
        del self._hedges[chunk]
        primary = self.in_flight.get(chunk)
        if primary is None or primary.done:
            return
        primary.cancel()
        if primary in self._paused:
            self._paused.remove(primary)
        self.in_flight[chunk] = backup
        self.hedges_won += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.hedges.won").inc()
        self._chunk_done(chunk, backup)

    def _hedge_failed(
        self, chunk: ChunkId, backup: PlanInstance, reason: str
    ) -> None:
        """A failed backup is dropped silently: the primary still runs
        and the normal retry machinery covers its failure."""
        if self._hedges.get(chunk) is backup:
            del self._hedges[chunk]
            primary = self.in_flight.get(chunk)
            if primary is not None:
                self.store.relocate(chunk, primary.plan.destination)

    def _cancel_hedge(self, chunk: ChunkId, winner: PlanInstance | None) -> None:
        """Drop the live backup (the primary finished or failed first)."""
        backup = self._hedges.pop(chunk, None)
        if backup is None or backup is winner:
            return
        backup.cancel()
        if winner is not None:
            self.store.relocate(chunk, winner.plan.destination)

    # -- suspicion ---------------------------------------------------------------

    def helper_suspected(self, node_id: int) -> int:
        """Fail in-flight repairs touching a suspected node (re-plan early).

        Called by the testbed when the failure detector raises a
        suspicion: instead of waiting for ``chunk_timeout`` to expire,
        every in-flight instance using the suspect is failed now, which
        routes it through the normal retry machinery — and the planner's
        suspicion filter keeps the suspect out of the fresh plan.
        Returns how many instances were failed.
        """
        if self._crashed:
            return 0
        failed = 0
        for chunk in list(self.in_flight):
            instance = self.in_flight.get(chunk)
            if (
                instance is not None
                and not instance.done
                and instance.uses_node(node_id)
            ):
                instance.fail(f"helper node {node_id} suspected")
                failed += 1
        self.suspect_replans += failed
        if failed:
            registry = get_registry()
            if registry.enabled:
                registry.counter("repair.suspect_replans").inc(failed)
        return failed

    # -- recovery ----------------------------------------------------------------

    def _check_timeout(self, chunk: ChunkId, instance: PlanInstance) -> None:
        if self._crashed:
            return
        if self.in_flight.get(chunk) is not instance or instance.done:
            return
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "repair.timeout",
                track="scheduler",
                chunk=str(chunk),
                timeout=self.chunk_timeout,
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.retry.timeouts").inc()
        instance.fail("chunk repair timed out")

    def _instance_failed(
        self, chunk: ChunkId, instance: PlanInstance, reason: str
    ) -> None:
        if self._crashed:
            return
        if self.in_flight.get(chunk) is not instance:
            return
        self.in_flight.pop(chunk, None)
        # A failed primary takes its backup down with it: the retry
        # relaunches from a clean slate (and relocates fresh metadata).
        self._cancel_hedge(chunk, None)
        self._stripes_busy.discard(chunk.stripe)
        if instance in self._paused:
            self._paused.remove(instance)
        self._replanned.discard(chunk)
        if self.journal is not None:
            self.journal.attempt_failed(chunk, reason)
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.retry.failures").inc()
        self.emit("chunk_failed", self, chunk=chunk, reason=reason)
        if not self.injector.is_repairable(chunk):
            self._mark_lost(chunk)
        elif self._attempts.get(chunk, 1) > self.max_retries:
            if registry.enabled:
                registry.counter("repair.retry.exhausted").inc()
            self._mark_lost(chunk)
        else:
            delay = self.retry_backoff * 2 ** (self._attempts.get(chunk, 1) - 1)
            if self._jitter_rng is not None:
                delay *= 1.0 + self.retry_jitter * float(
                    self._jitter_rng.uniform(-1.0, 1.0)
                )
            if self.max_backoff is not None:
                delay = min(delay, self.max_backoff)
            self._retry_wait.add(chunk)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "repair.retry",
                    track="scheduler",
                    chunk=str(chunk),
                    reason=reason,
                    attempt=self._attempts.get(chunk, 1),
                    backoff=delay,
                )
            self.cluster.sim.schedule(delay, self._retry, chunk)
        self._admit_chunks()

    def _retry(self, chunk: ChunkId) -> None:
        if self._crashed or chunk not in self._retry_wait:
            return
        self._retry_wait.discard(chunk)
        self.retries += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.retry.attempts").inc()
        self.emit("retry", self, chunk=chunk, attempt=self._attempts.get(chunk, 0))
        self.pending.insert(0, chunk)
        self._admit_chunks()

    def _mark_lost(self, chunk: ChunkId) -> None:
        self.lost.append(chunk)
        if self.journal is not None:
            self.journal.chunk_lost(chunk)
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.chunks_lost").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant("repair.chunk_lost", track="scheduler", chunk=str(chunk))
        self.emit("chunk_lost", self, chunk=chunk)
        first = self.tolerance_exceeded is None
        self.tolerance_exceeded = ToleranceExceeded(
            failed_nodes=tuple(sorted(self.cluster.failed_node_ids())),
            lost_chunks=tuple(self.lost),
            at=self.cluster.sim.now,
        )
        if first:
            self.emit("tolerance_exceeded", self, outcome=self.tolerance_exceeded)

    def _maybe_finish(self) -> None:
        if (
            self._started
            and not self._crashed
            and not self._finished
            and not self.pending
            and not self.in_flight
            and not self._retry_wait
        ):
            self._finish()

    def _chunk_done(self, chunk: ChunkId, instance: PlanInstance) -> None:
        if self._crashed:
            return
        self._cancel_hedge(chunk, instance)
        self.in_flight.pop(chunk, None)
        self._stripes_busy.discard(chunk.stripe)
        if instance in self._paused:
            self._paused.remove(instance)
        self.completed.append(chunk)
        if self.journal is not None:
            # Commit BEFORE announcing: if a chunk_repaired subscriber
            # (the integrity data plane) rejects the bytes, its requeue
            # re-opens the chunk with a later enqueue record.
            self.journal.decode_verified(chunk)
            self.journal.writeback_committed(chunk)
        self.meter.record_repair(self.cluster.sim.now, self.chunk_size)
        for callback in self.on_chunk_repaired:
            callback(chunk, instance.plan)
        self.emit("chunk_repaired", self, chunk=chunk, plan=instance.plan)
        if self.pending:
            # A slot freed up: keep filling the current phase.
            self._admit_chunks()
        else:
            self._maybe_finish()

    def _end_phase(self) -> None:
        if self._finished or self._crashed:
            return
        # Postponed tasks that never got their restart window resume now.
        for instance in self._paused:
            instance.resume()
        self._paused.clear()
        self.tracker.clear_finished()
        self._close_phase_span()
        self._start_phase()

    def _close_phase_span(self) -> None:
        if self._phase_span is None:
            return
        completed, retunes, reorders = self._phase_baseline
        self._phase_span.finish(
            admitted=self._phase_admitted,
            completed=len(self.completed) - completed,
            retunes=self.retunes - retunes,
            reorders=self.reorders - reorders,
        )
        self._phase_span = None

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self._close_phase_span()
        self.meter.finish(self.cluster.sim.now)
        registry = get_registry()
        if registry.enabled:
            registry.counter("chameleon.chunks_repaired").inc(len(self.completed))
            registry.counter("chameleon.retunes").inc(self.retunes)
            registry.counter("chameleon.reorders").inc(self.reorders)
            registry.counter("chameleon.replans").inc(self.replans)
        self.emit("all_done", self)

    # -- straggler-aware re-scheduling (Section III-C) -------------------------------

    def _progress_check(self, phase_end: float) -> None:
        if self._finished or self._crashed:
            return
        if self.cluster.sim.now >= phase_end - 1e-9:
            return
        now = self.cluster.sim.now
        for task in self.tracker.delayed_tasks(now):
            self._handle_straggler(task)
        self._resume_ready()
        next_check = min(now + self.check_interval, phase_end)
        if next_check > now + 1e-9:
            self.cluster.sim.call_at(next_check, self._progress_check, phase_end)

    def _handle_straggler(self, task: TrackedTask) -> None:
        instance: PlanInstance = task.chunk_key
        transfer = task.transfer
        if instance.done or transfer.done or transfer.cancelled:
            return
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "straggler.detected",
                track="scheduler",
                task=transfer.name,
                task_id=transfer.id,
                chunk=str(instance.plan.chunk),
                expected_finish=task.expected_finish,
                completed_slices=transfer.completed_slices,
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("chameleon.stragglers_detected").inc()
        # Strongest reaction first: if this chunk's repair has barely
        # moved, re-tune the *plan* — re-dispatch against the bandwidth
        # the monitor sees now, which substitutes the straggling node
        # entirely (MDS codes have m - 1 spare candidates). This is the
        # plan-level half of "re-tunes task transmissions and repair
        # plans to bypass unexpected stragglers".
        if self.enable_retuning and self._replan(instance, transfer):
            return
        downloader = instance.downloader_of(transfer)
        retuned = False
        if (
            self.enable_retuning
            and downloader is not None
            and downloader != instance.plan.destination
            and self._retune_is_useful(instance, transfer, downloader)
        ):
            # Repair re-tuning (Fig. 10(b)): redirect the delayed source
            # download to the destination so the relay's dependent
            # combine-upload stops waiting on it.
            replacement = instance.retune(transfer)
            self.retunes += 1
            if tracer.enabled:
                tracer.instant(
                    "plan.retuned",
                    track="scheduler",
                    kind="redirect",
                    chunk=str(instance.plan.chunk),
                    orig_task=transfer.name,
                    orig_task_id=transfer.id,
                    replacement=replacement.name,
                    replacement_id=replacement.id,
                )
            self.tracker.track(
                replacement,
                self.cluster.sim.now + self.check_interval * 2,
                chunk_key=instance,
            )
            retuned = True
        if self.enable_reordering and not retuned and instance not in self._paused:
            # Transmission re-ordering (Fig. 10(a)): postpone the tasks
            # stuck behind the straggler so their links serve other
            # chunks; restart when the straggler finishes (or at phase
            # end, whichever comes first).
            paused = instance.pause_downstream(transfer)
            if paused:
                self._paused.append(instance)
                self.reorders += 1
                if tracer.enabled:
                    tracer.instant(
                        "plan.reordered",
                        track="scheduler",
                        chunk=str(instance.plan.chunk),
                        orig_task=transfer.name,
                        orig_task_id=transfer.id,
                        paused=len(paused),
                    )
                transfer.on_complete.append(
                    lambda _t, inst=instance: self._wake(inst)
                )

    def _replan(self, instance: PlanInstance, transfer) -> bool:
        """Re-dispatch a barely-started chunk around the straggler."""
        chunk = instance.plan.chunk
        if chunk in self._replanned:
            return False
        total = sum(t.size for t in instance.uploads.values())
        moved = sum(t.bytes_completed for t in instance.uploads.values())
        if total <= 0 or moved > 0.25 * total:
            return False
        self._replanned.add(chunk)
        # Fresh estimates: close the monitor window now so the straggler's
        # load is visible to the new dispatch.
        self.monitor.sample()
        if self.journal is not None:
            # Release the lease: the old attempt is about to be cancelled
            # and the chunk either relaunches (new plan_chosen) or queues.
            self.journal.attempt_failed(chunk, "replan")
        instance.cancel()
        self.in_flight.pop(chunk, None)
        # Any live backup raced the instance we just tore down.
        self._cancel_hedge(chunk, None)
        self._stripes_busy.discard(chunk.stripe)
        if instance in self._paused:
            self._paused.remove(instance)
        try:
            dispatch = self.dispatcher.dispatch_chunk(chunk, self.store.code)
        except SchedulingError:
            self.pending.append(chunk)
            return True
        self.replans += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "plan.retuned",
                track="scheduler",
                kind="replan",
                chunk=str(chunk),
                orig_task=transfer.name,
                orig_task_id=transfer.id,
                destination=dispatch.destination,
            )
        self._launch(dispatch)
        return True

    def _retune_is_useful(
        self, instance: PlanInstance, transfer, downloader: int
    ) -> bool:
        """True when redirecting actually unblocks dependent work.

        Re-tuning pays off when (i) a meaningful amount of the delayed
        download is still outstanding and (ii) the relay downloading it
        still has its combine-upload to run (the dependent task that the
        redirect releases).
        """
        if transfer.bytes_completed > 0.75 * transfer.size:
            return False
        relay_upload = instance.uploads.get(downloader)
        return relay_upload is not None and not relay_upload.done

    def _wake(self, instance: PlanInstance) -> None:
        if instance in self._paused:
            self._paused.remove(instance)
            if not instance.done:
                instance.resume()

    def _resume_ready(self) -> None:
        # Defensive sweep: any paused chunk whose tracked tasks all
        # finished should not stay parked.
        for instance in list(self._paused):
            if all(t.done or t.cancelled for t in instance.uploads.values()):
                self._wake(instance)
