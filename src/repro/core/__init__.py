"""ChameleonEC: tunable, low-interference erasure-coded repair."""

from repro.core.candidates import repair_candidates
from repro.core.chameleon import MULTI_NODE_POLICIES, ChameleonRepair
from repro.core.chameleon_io import ChameleonRepairIO
from repro.core.dispatch import TaskDispatcher
from repro.core.planner import build_parent_map, build_plan
from repro.core.tasks import ChunkDispatch, PhaseLoad

__all__ = [
    "MULTI_NODE_POLICIES",
    "ChameleonRepair",
    "ChameleonRepairIO",
    "ChunkDispatch",
    "PhaseLoad",
    "TaskDispatcher",
    "build_parent_map",
    "build_plan",
    "repair_candidates",
]
