"""Repair task dispatch (Section III-A).

For each failed chunk the dispatcher decomposes the repair into ``k``
upload and ``k`` download tasks and places them on nodes so the phase's
estimated completion time is minimised, using the idle bandwidth the
monitor reports:

1. *Destination* — minimum-time-first among nodes holding no chunk of
   the stripe: the smallest ``(T_down + 1) |C| / B_down``. The
   destination always receives the first download task.
2. *Remaining k-1 downloads* — greedily to the node (destination or any
   candidate source) whose estimated repair time after the assignment is
   smallest. Giving a source its *first* download also creates the
   associated upload of its partially decoded chunk; further downloads
   merge into that combine and add no upload (the relay-merging rule).
3. *Remaining uploads* — minimum-time-first over candidate sources that
   got no download, at most one each.
"""

from __future__ import annotations

from collections import Counter

from repro.cluster.failures import FailureInjector
from repro.cluster.stripes import ChunkId
from repro.codes.base import ErasureCode
from repro.errors import SchedulingError
from repro.monitor.bandwidth import BandwidthMonitor
from repro.obs.tracer import get_tracer
from repro.core.candidates import repair_candidates
from repro.core.tasks import ChunkDispatch, PhaseLoad


class TaskDispatcher:
    """Phase-scoped assignment of repair tasks to nodes."""

    def __init__(
        self,
        injector: FailureInjector,
        monitor: BandwidthMonitor,
        *,
        chunk_size: float,
        io_aware: bool = False,
        max_relay_fraction: float = 0.5,
    ) -> None:
        self.injector = injector
        self.monitor = monitor
        self.cluster = injector.cluster
        self.chunk_size = chunk_size
        self.io_aware = io_aware
        # At most this fraction of a chunk's sources may become relays.
        # The per-node time estimates ignore transmission dependencies, so
        # unbounded relaying degenerates into an ECPipe-style chain (every
        # fresh source looks "free"); bounding new relays reproduces the
        # bushy trees of the paper's Fig. 8 example (k = 4, two relays).
        if not 0 <= max_relay_fraction <= 1:
            raise SchedulingError("max_relay_fraction must lie in [0, 1]")
        self.max_relay_fraction = max_relay_fraction
        self.load = PhaseLoad()

    def begin_phase(self) -> None:
        """Forget task assignments of the previous phase."""
        self.load.reset()

    # -- bandwidth views -------------------------------------------------------

    def _bw_up(self, node_id: int) -> float:
        node = self.cluster.node(node_id)
        if self.io_aware:
            return self.monitor.idle_disk_read(node)
        return self.monitor.idle_uplink(node)

    def _bw_down(self, node_id: int) -> float:
        node = self.cluster.node(node_id)
        if self.io_aware:
            return self.monitor.idle_disk_write(node)
        return self.monitor.idle_downlink(node)

    def _node_time(self, node_id: int, up: int, down: int) -> float:
        """max(upload time, download time) for the given task counts."""
        size = self.chunk_size
        return max(up * size / self._bw_up(node_id), down * size / self._bw_down(node_id))

    # -- dispatch ---------------------------------------------------------------

    def select_destination(self, chunk: ChunkId) -> int:
        """Minimum-time-first destination selection."""
        candidates = self.injector.candidate_destinations(chunk)
        if not candidates:
            raise SchedulingError(f"no destination candidates for {chunk}")
        scores = {
            d: (self.load.down[d] + 1) * self.chunk_size / self._bw_down(d)
            for d in candidates
        }
        chosen = min(candidates, key=lambda d: (scores[d], d))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "dispatch.destination",
                track="scheduler",
                chunk=str(chunk),
                chosen=chosen,
                scores={str(d): scores[d] for d in sorted(scores)},
            )
        return chosen

    def dispatch_chunk(
        self,
        chunk: ChunkId,
        code: ErasureCode,
        destination: int | None = None,
    ) -> ChunkDispatch:
        """Assign the chunk's 2k repair tasks; updates the phase load.

        ``destination`` pins the repaired chunk's landing node — degraded
        reads deliver straight to the requesting client instead of a
        storage node chosen by minimum-time-first.
        """
        survivors = self.injector.surviving_sources(chunk)
        candidates, required = repair_candidates(code, chunk.index, survivors)
        node_to_index = {node: idx for idx, node in candidates.items()}
        candidate_nodes = sorted(node_to_index)

        if destination is None:
            destination = self.select_destination(chunk)
        self.load.down[destination] += 1
        dest_downloads = 1

        allow_relays = code.supports_partial_combine
        max_relays = int(required * self.max_relay_fraction)
        chunk_downloads: Counter = Counter()  # per-source, this chunk only

        for _ in range(required - 1):
            best_node, best_time = None, None
            # Option 1: another download at the destination.
            t = self._node_time(
                destination, self.load.up[destination], self.load.down[destination] + 1
            )
            best_node, best_time = destination, t
            if allow_relays:
                for node in candidate_nodes:
                    if chunk_downloads[node] == 0:
                        if len(chunk_downloads) >= max_relays:
                            continue  # relay budget for this chunk is spent
                        # First download => associated combine-upload appears.
                        t = self._node_time(
                            node, self.load.up[node] + 1, self.load.down[node] + 1
                        )
                    else:
                        t = self._node_time(
                            node, self.load.up[node], self.load.down[node] + 1
                        )
                    if t < best_time - 1e-12:
                        best_node, best_time = node, t
            if best_node == destination:
                self.load.down[destination] += 1
                dest_downloads += 1
            else:
                if chunk_downloads[best_node] == 0:
                    self.load.up[best_node] += 1
                self.load.down[best_node] += 1
                chunk_downloads[best_node] += 1

        relays = sorted(chunk_downloads)
        # Remaining uploads: sources with no download task, min-time-first.
        needed_uploads = required - len(relays)
        plain_pool = [n for n in candidate_nodes if n not in chunk_downloads]
        if len(plain_pool) < needed_uploads:
            raise SchedulingError(
                f"not enough candidate sources for {chunk}: "
                f"{len(plain_pool)} available, {needed_uploads} required"
            )
        plain_pool.sort(
            key=lambda n: (
                (self.load.up[n] + 1) * self.chunk_size / self._bw_up(n),
                n,
            )
        )
        uploaders = plain_pool[:needed_uploads]
        for node in uploaders:
            self.load.up[node] += 1

        participants = relays + uploaders
        chunk_indices = {node: node_to_index[node] for node in participants}
        estimated = max(
            [self._node_time(destination, self.load.up[destination], self.load.down[destination])]
            + [self._node_time(n, self.load.up[n], self.load.down[n]) for n in participants]
        )

        # Traffic accounting fraction (Butterfly half-chunk reads).
        equation = code.repair_equation(chunk.index, set(chunk_indices.values()))

        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "dispatch.chunk",
                track="scheduler",
                chunk=str(chunk),
                destination=destination,
                relays=relays,
                uploaders=uploaders,
                estimated_time=estimated,
            )
        return ChunkDispatch(
            chunk=chunk,
            destination=destination,
            participants=participants,
            chunk_indices=chunk_indices,
            source_downloads=dict(chunk_downloads),
            dest_downloads=dest_downloads,
            estimated_time=estimated,
            read_fraction=equation.read_fraction,
        )
