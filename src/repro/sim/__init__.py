"""Discrete-event fluid-flow network/storage simulator."""

from repro.sim.allocator import FromScratchAllocator, RateAllocator, allocate_rates
from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.flows import Flow, FlowScheduler
from repro.sim.kernel import ColumnarFlowScheduler, ColumnarRateAllocator, FlowKernel
from repro.sim.resources import Resource
from repro.sim.transfers import Transfer, TransferManager

__all__ = [
    "ColumnarFlowScheduler",
    "ColumnarRateAllocator",
    "Event",
    "EventQueue",
    "Flow",
    "FlowKernel",
    "FlowScheduler",
    "FromScratchAllocator",
    "RateAllocator",
    "Resource",
    "Simulator",
    "Transfer",
    "TransferManager",
    "allocate_rates",
]
