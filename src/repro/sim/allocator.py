"""Max-min fair bandwidth allocation (progressive filling).

Given a set of flows, each traversing a set of resources, the allocator
assigns every flow the largest rate such that (i) no resource exceeds its
capacity and (ii) the allocation is max-min fair: a flow's rate can only
be increased by decreasing that of a flow with an equal or smaller rate.
This is the standard fluid model for TCP-like fair sharing and is what
makes repair flows and foreground flows contend realistically on node
up/downlinks.

Two allocators share one progressive-filling core:

* :func:`allocate_rates` / :class:`FromScratchAllocator` — recompute the
  whole flow set on every call. Simple, and the reference oracle for the
  incremental allocator's equivalence tests.
* :class:`RateAllocator` — persists the flow/resource contention graph
  across calls, tracks the resources touched by each mutation, and on
  :meth:`RateAllocator.recompute` re-rates only the connected component
  of flows reachable from those dirty resources. Max-min allocations
  decompose exactly over connected components of the bipartite
  flow/resource graph (flows in different components share no resource,
  so neither can affect the other's bottleneck), which makes the
  incremental result identical to a from-scratch pass — only cheaper
  when the contention graph is not one giant component.
"""

from __future__ import annotations

from typing import Callable, Iterable, KeysView, Protocol

from repro.sim.resources import Resource

#: Strict-improvement slack when comparing bottleneck fair shares.
_SHARE_SLACK = 1e-12


class AllocatableFlow(Protocol):
    """Minimal flow interface the allocator needs."""

    resources: tuple[Resource, ...]
    rate: float


def _unique_resources(flow: AllocatableFlow) -> tuple[Resource, ...]:
    """A flow's resources with duplicates removed, order preserved.

    A flow listing the same resource twice must count once against that
    resource (it occupies one share of the pipe, not two); deduplicating
    here keeps the usage subtraction and the user set consistent.
    """
    return tuple(dict.fromkeys(flow.resources))


def _progressive_fill(
    flows: Iterable[AllocatableFlow],
    flow_resources: dict[AllocatableFlow, tuple[Resource, ...]],
) -> dict[AllocatableFlow, float]:
    """Max-min rates for a *closed* set of flows.

    ``flows`` must be closed under resource sharing (every flow crossing
    a resource of a listed flow is itself listed); ``flow_resources``
    maps each to its deduplicated resource tuple. Repeatedly finds the
    bottleneck resource (smallest fair share among its unfixed flows),
    freezes its flows at that share, subtracts their usage everywhere,
    and continues.

    Floating-point contract: each round subtracts the frozen usage from
    a resource as one fused ``share * count`` product (not ``count``
    successive subtractions). The columnar kernel
    (:class:`repro.sim.kernel.ColumnarRateAllocator`) performs the same
    IEEE-754 operations in the same order on numpy arrays, which is what
    makes the two paths byte-identical — change one, change both.
    """
    # ``users`` values are insertion-ordered dicts used as sets: iteration
    # order (bottleneck tie-breaks, freeze order, hence ``rates`` insertion
    # order) must not depend on object identity hashes, or two identical
    # runs diverge in how they order same-instant flow completions.
    rates: dict[AllocatableFlow, float] = {}
    n_unfixed = 0
    remaining: dict[Resource, float] = {}
    users: dict[Resource, dict[AllocatableFlow, None]] = {}
    for flow in flows:
        resources = flow_resources[flow]
        if not resources:
            # Unconstrained in the fluid model: unbounded rate.
            rates[flow] = float("inf")
            continue
        n_unfixed += 1
        for res in resources:
            members = users.get(res)
            if members is None:
                remaining[res] = res.capacity
                users[res] = {flow: None}
            else:
                members[flow] = None

    inf = float("inf")
    while n_unfixed:
        bottleneck: Resource | None = None
        best_share = inf
        for res, members in users.items():
            # Clamp float drift: repeated subtraction can push a fully
            # used resource a hair below zero, which must not turn into
            # a negative share. (Every entry in ``users`` is non-empty:
            # emptied entries are deleted in the freeze loop below.)
            cap = remaining[res]
            share = cap / len(members) if cap > 0.0 else 0.0
            if share < best_share - _SHARE_SLACK:
                best_share = share
                bottleneck = res
        if bottleneck is None:  # pragma: no cover - defensive; every
            # unfixed flow sits in a non-empty user set by construction.
            for members in users.values():
                for flow in members:
                    rates.setdefault(flow, inf)
            break
        removed: dict[Resource, int] = {}
        for flow in users.pop(bottleneck):
            rates[flow] = best_share
            n_unfixed -= 1
            for res in flow_resources[flow]:
                if res is bottleneck:
                    continue
                members = users.get(res)
                if members is None:
                    continue
                members.pop(flow, None)
                removed[res] = removed.get(res, 0) + 1
        for res, count in removed.items():
            remaining[res] -= best_share * count
            if not users[res]:
                del users[res]
    return rates


def allocate_rates(flows: Iterable[AllocatableFlow]) -> None:
    """Assign max-min fair rates to ``flows`` in place (from scratch)."""
    flow_list = list(flows)
    mapping = {flow: _unique_resources(flow) for flow in flow_list}
    rates = _progressive_fill(mapping, mapping)
    for flow in flow_list:
        flow.rate = rates[flow]


class RateAllocator:
    """Incremental max-min allocator with a persistent contention graph.

    Mutations (:meth:`add_flow`, :meth:`remove_flow`, :meth:`mark_dirty`)
    only record which resources were touched; :meth:`recompute` then
    re-rates the connected component of flows reachable from those dirty
    resources and leaves every other flow's rate untouched. The caller
    (normally :class:`repro.sim.flows.FlowScheduler`) coalesces a burst
    of same-timestamp mutations into a single recompute epoch.
    """

    def __init__(self) -> None:
        # Insertion-ordered dicts stand in for sets throughout: flows and
        # resources hash by identity, so genuine sets would iterate in
        # address order and make component traversal — and with it the
        # ordering of same-instant completions — vary between runs.
        self._flow_resources: dict[AllocatableFlow, tuple[Resource, ...]] = {}
        self._users: dict[Resource, dict[AllocatableFlow, None]] = {}
        self._dirty: dict[Resource, None] = {}
        self._all_dirty = False
        # Flows added since the last recompute: they need a rate (and the
        # scheduler needs to index their ETA) even if nothing else moved.
        self._fresh: dict[AllocatableFlow, None] = {}

    def __len__(self) -> int:
        return len(self._flow_resources)

    @property
    def flows(self) -> KeysView[AllocatableFlow]:
        """The registered (active) flows."""
        return self._flow_resources.keys()

    def add_flow(self, flow: AllocatableFlow) -> None:
        """Register ``flow``; its resources become dirty."""
        if flow in self._flow_resources:
            return
        unique = _unique_resources(flow)
        self._flow_resources[flow] = unique
        self._fresh[flow] = None
        for res in unique:
            self._users.setdefault(res, {})[flow] = None
            self._dirty[res] = None

    def remove_flow(self, flow: AllocatableFlow) -> None:
        """Unregister ``flow`` (completed or cancelled); resources dirty."""
        unique = self._flow_resources.pop(flow, None)
        if unique is None:
            return
        self._fresh.pop(flow, None)
        for res in unique:
            members = self._users.get(res)
            if members is not None:
                members.pop(flow, None)
                if not members:
                    del self._users[res]
            self._dirty[res] = None

    def mark_dirty(self, *resources: Resource) -> None:
        """Mark capacity-changed resources; no arguments marks everything."""
        if not resources:
            self._all_dirty = True
        else:
            self._dirty.update(dict.fromkeys(resources))

    def recompute(
        self, on_touch: Callable[[AllocatableFlow], None] | None = None
    ) -> list[AllocatableFlow]:
        """Re-rate the flows affected by mutations since the last call.

        Re-runs progressive filling over the connected component
        reachable from the dirty resources, then rewrites only the rates
        that actually moved. ``on_touch`` is invoked once per rewritten
        flow *before* its rate changes (the scheduler uses it to settle
        progress at the old rate — which is exactly when settling is
        required: a flow whose rate is unchanged keeps accruing progress
        linearly from its older settle stamp). Returns the rewritten
        flows; every other registered flow kept its previous rate.
        """
        flow_resources = self._flow_resources
        if self._all_dirty:
            comp_flows: dict[AllocatableFlow, None] = dict.fromkeys(flow_resources)
        else:
            users = self._users
            comp_flows = {}
            visited: set[Resource] = set()
            stack = [res for res in self._dirty if res in users]
            while stack:
                res = stack.pop()
                if res in visited:
                    continue
                visited.add(res)
                for flow in users[res]:
                    if flow not in comp_flows:
                        comp_flows[flow] = None
                        for other in flow_resources[flow]:
                            if other not in visited:
                                stack.append(other)
            if self._fresh:
                # Resource-less fresh flows sit in no user set; they
                # still need their (unbounded) rate assigned once.
                comp_flows.update(
                    dict.fromkeys(
                        flow for flow in self._fresh if not flow_resources[flow]
                    )
                )
        self._dirty.clear()
        self._all_dirty = False
        self._fresh.clear()
        if not comp_flows:
            return []
        changed: list[AllocatableFlow] = []
        if len(comp_flows) == 1:
            # Fast path for the common case of an uncontended component:
            # a lone flow's max-min rate is its tightest capacity.
            (flow,) = comp_flows
            rate = float("inf")
            for res in flow_resources[flow]:
                if res.capacity < rate:
                    rate = res.capacity
            if rate != flow.rate:
                if on_touch is not None:
                    on_touch(flow)
                flow.rate = rate
                changed.append(flow)
            return changed
        rates = _progressive_fill(comp_flows, flow_resources)
        for flow, rate in rates.items():
            if rate != flow.rate:
                if on_touch is not None:
                    on_touch(flow)
                flow.rate = rate
                changed.append(flow)
        return changed


class FromScratchAllocator:
    """Reference allocator: global progressive filling on every epoch.

    Implements the same interface as :class:`RateAllocator` so it can be
    dropped into a :class:`repro.sim.flows.FlowScheduler` as the oracle
    in equivalence tests and as the baseline in scaling benchmarks.
    """

    def __init__(self) -> None:
        self._flows: dict[AllocatableFlow, None] = {}

    def __len__(self) -> int:
        return len(self._flows)

    @property
    def flows(self) -> KeysView[AllocatableFlow]:
        """The registered (active) flows."""
        return self._flows.keys()

    def add_flow(self, flow: AllocatableFlow) -> None:
        self._flows[flow] = None

    def remove_flow(self, flow: AllocatableFlow) -> None:
        self._flows.pop(flow, None)

    def mark_dirty(self, *resources: Resource) -> None:
        pass  # every recompute is global anyway

    def recompute(
        self, on_touch: Callable[[AllocatableFlow], None] | None = None
    ) -> list[AllocatableFlow]:
        flows = list(self._flows)
        if on_touch is not None:
            for flow in flows:
                on_touch(flow)
        allocate_rates(flows)
        return flows
