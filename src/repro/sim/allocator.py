"""Max-min fair bandwidth allocation (progressive filling).

Given a set of flows, each traversing a set of resources, the allocator
assigns every flow the largest rate such that (i) no resource exceeds its
capacity and (ii) the allocation is max-min fair: a flow's rate can only
be increased by decreasing that of a flow with an equal or smaller rate.
This is the standard fluid model for TCP-like fair sharing and is what
makes repair flows and foreground flows contend realistically on node
up/downlinks.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.sim.resources import Resource


class AllocatableFlow(Protocol):
    """Minimal flow interface the allocator needs."""

    resources: tuple[Resource, ...]
    rate: float


def allocate_rates(flows: Iterable[AllocatableFlow]) -> None:
    """Assign max-min fair rates to ``flows`` in place.

    Runs progressive filling: repeatedly find the bottleneck resource
    (smallest fair share among its unfixed flows), freeze its flows at
    that share, subtract their usage everywhere, and continue.
    """
    unfixed: set[int] = set()
    flow_list = list(flows)
    for i, flow in enumerate(flow_list):
        flow.rate = 0.0
        unfixed.add(i)

    if not unfixed:
        return

    remaining: dict[Resource, float] = {}
    users: dict[Resource, set[int]] = {}
    for i in unfixed:
        for res in flow_list[i].resources:
            if res not in remaining:
                remaining[res] = res.capacity
                users[res] = set()
            users[res].add(i)

    while unfixed:
        bottleneck: Resource | None = None
        best_share = float("inf")
        for res, flow_ids in users.items():
            if not flow_ids:
                continue
            share = remaining[res] / len(flow_ids)
            if share < best_share - 1e-12:
                best_share = share
                bottleneck = res
        if bottleneck is None:
            # Remaining flows use no constrained resource: unbounded in the
            # fluid model; cap at infinity is meaningless, so give them the
            # largest share seen (or leave at 0 if nothing constrains them).
            for i in unfixed:
                flow_list[i].rate = float("inf")
            break
        fixed_now = list(users[bottleneck])
        for i in fixed_now:
            flow_list[i].rate = max(best_share, 0.0)
            for res in flow_list[i].resources:
                remaining[res] -= flow_list[i].rate
                users[res].discard(i)
            unfixed.discard(i)
        users[bottleneck].clear()
