"""Shared bandwidth resources (links, disks) with per-tag accounting."""

from __future__ import annotations

from collections import defaultdict

from repro.errors import SimulationError


class Resource:
    """A capacity-limited pipe (an uplink, a downlink, a disk, ...).

    ``capacity`` is in bytes per second. Flows crossing the resource share
    it max-min fairly (see :mod:`repro.sim.allocator`). The resource keeps
    cumulative byte counters per traffic tag so monitors can compute
    windowed utilisation (used for the paper's Fig. 5/6 measurements and
    by the ChameleonEC bandwidth monitor).
    """

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"resource {name!r} needs positive capacity")
        self.name = name
        self.capacity = capacity
        self.bytes_by_tag: dict[str, float] = defaultdict(float)

    def account(self, tag: str, nbytes: float) -> None:
        """Attribute ``nbytes`` of transferred data to traffic tag ``tag``."""
        self.bytes_by_tag[tag] += nbytes

    @property
    def total_bytes(self) -> float:
        """All bytes ever moved through this resource."""
        return sum(self.bytes_by_tag.values())

    def bytes_for(self, tag: str) -> float:
        """Cumulative bytes for one tag."""
        return self.bytes_by_tag.get(tag, 0.0)

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity (used by throttling experiments).

        The caller must trigger a rate recomputation on the scheduler that
        owns the active flows.
        """
        if capacity <= 0:
            raise SimulationError(f"resource {self.name!r} needs positive capacity")
        self.capacity = capacity

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<Resource {self.name} cap={self.capacity:.3g}B/s>"
