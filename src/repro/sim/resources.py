"""Shared bandwidth resources (links, disks) with per-tag accounting."""

from __future__ import annotations

from collections import defaultdict

from repro.errors import SimulationError


class Resource:
    """A capacity-limited pipe (an uplink, a downlink, a disk, ...).

    ``capacity`` is in bytes per second. Flows crossing the resource share
    it max-min fairly (see :mod:`repro.sim.allocator`). The resource keeps
    cumulative byte counters per traffic tag so monitors can compute
    windowed utilisation (used for the paper's Fig. 5/6 measurements and
    by the ChameleonEC bandwidth monitor).

    When registered with a :class:`repro.sim.kernel.FlowKernel`, the
    capacity is mirrored into the kernel's columnar array and the per-tag
    counters become a *view*: the base dict holds bytes folded in at flow
    detach plus any direct :meth:`account` calls, and the live progress of
    attached flows is summed on demand from the kernel arrays.
    """

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"resource {name!r} needs positive capacity")
        self.name = name
        self._capacity = float(capacity)
        self._bytes: dict[str, float] = defaultdict(float)
        self._kernel = None  # FlowKernel | None (set by FlowKernel)
        self._kslot = -1

    @property
    def capacity(self) -> float:
        """Capacity in bytes per second."""
        return self._capacity

    @capacity.setter
    def capacity(self, value: float) -> None:
        self._capacity = value
        if self._kernel is not None:
            self._kernel.res_capacity[self._kslot] = value

    @property
    def bytes_by_tag(self) -> dict[str, float]:
        """Cumulative bytes moved through this resource, keyed by tag.

        Detached from any kernel this is the live (mutable) counter dict;
        kernel-attached it is a fresh snapshot combining the folded base
        counters with the in-flight progress of attached flows.
        """
        if self._kernel is None:
            return self._bytes
        return self._kernel.resource_bytes(self._kslot, self._bytes)

    def account(self, tag: str, nbytes: float) -> None:
        """Attribute ``nbytes`` of transferred data to traffic tag ``tag``."""
        self._bytes[tag] += nbytes

    @property
    def total_bytes(self) -> float:
        """All bytes ever moved through this resource."""
        return sum(self.bytes_by_tag.values())

    def bytes_for(self, tag: str) -> float:
        """Cumulative bytes for one tag."""
        return self.bytes_by_tag.get(tag, 0.0)

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity (used by throttling experiments).

        The caller must trigger a rate recomputation on the scheduler that
        owns the active flows.
        """
        if capacity <= 0:
            raise SimulationError(f"resource {self.name!r} needs positive capacity")
        self.capacity = capacity

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<Resource {self.name} cap={self.capacity:.3g}B/s>"
