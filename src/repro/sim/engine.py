"""The discrete-event simulation engine."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.sim.events import Event, EventQueue


class Simulator:
    """Virtual-time event loop.

    All timestamps are seconds of simulated time. Components schedule
    callbacks with :meth:`schedule` (relative) or :meth:`call_at`
    (absolute) and the owner drives the loop with :meth:`run`.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.events_dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def peek_next_time(self) -> float | None:
        """Timestamp of the earliest queued event (None when drained).

        Lets drivers jump straight to the next event instead of probing
        the clock in blind fixed steps.
        """
        return self._queue.peek_time()

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, *args)

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self._queue.push(max(time, self._now), callback, *args)

    def run(self, until: float | None = None) -> float:
        """Process events (optionally only up to time ``until``).

        Returns the simulation time when the loop stops:

        * the queue drained — when ``until`` is given the clock advances
          exactly to ``until``, otherwise it stays at the last event;
        * the next event lies beyond ``until`` — the clock advances
          exactly to ``until``;
        * an event called :meth:`stop` — the clock stays at that event's
          timestamp, *even when* ``until`` was given and the queue is
          empty. A stopped run never jumps ahead of the event that
          stopped it, so ``run(until=...)`` callers can rely on
          ``now == until`` if and only if the run was not stopped early.
        """
        dispatched_before = self.events_dispatched
        self._running = True
        stopped = False
        try:
            while self._running:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                assert event is not None
                if event.time < self._now - 1e-9:
                    raise SimulationError("event queue produced a past event")
                self._now = event.time
                self.events_dispatched += 1
                event.callback(*event.args)
            stopped = not self._running
        finally:
            self._running = False
        registry = get_registry()
        if registry.enabled:
            registry.counter("sim.events_dispatched").inc(
                self.events_dispatched - dispatched_before
            )
        if (
            not stopped
            and until is not None
            and self._queue.peek_time() is None
            and self._now < until
        ):
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop :meth:`run` after the current event finishes."""
        self._running = False

    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)
