"""The discrete-event simulation engine."""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.sim.events import Event, EventQueue


class PeriodicHook:
    """Handle for a repeating callback installed via :meth:`Simulator.every`.

    The callback fires every ``interval`` seconds of virtual time until
    :meth:`cancel` is called. Cancellation is immediate: the pending
    event is marked dead in the queue and never dispatched.
    """

    __slots__ = ("_sim", "_interval", "_callback", "_event", "_cancelled", "fires")

    def __init__(self, sim: "Simulator", interval: float, callback) -> None:
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._cancelled = False
        self.fires = 0
        self._event = sim.schedule(interval, self._fire)

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` ran."""
        return self._cancelled

    def _fire(self) -> None:
        if self._cancelled:  # pragma: no cover - cancel kills the event
            return
        # Reschedule before running the callback so a callback that
        # cancels the hook tears down the *next* occurrence too.
        self._event = self._sim.schedule(self._interval, self._fire)
        self.fires += 1
        self._callback()

    def cancel(self) -> None:
        """Stop firing; the pending occurrence is dropped."""
        if self._cancelled:
            return
        self._cancelled = True
        self._event.cancel()


class Simulator:
    """Virtual-time event loop.

    All timestamps are seconds of simulated time. Components schedule
    callbacks with :meth:`schedule` (relative) or :meth:`call_at`
    (absolute) and the owner drives the loop with :meth:`run`.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.events_dispatched = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def peek_next_time(self) -> float | None:
        """Timestamp of the earliest queued event (None when drained).

        Lets drivers jump straight to the next event instead of probing
        the clock in blind fixed steps.
        """
        return self._queue.peek_time()

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, *args)

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self._queue.push(max(time, self._now), callback, *args)

    def every(self, interval: float, callback: Callable[[], Any]) -> PeriodicHook:
        """Install a repeating sampling hook on the clock.

        ``callback()`` runs every ``interval`` seconds of virtual time,
        starting one interval from now, until the returned handle's
        :meth:`PeriodicHook.cancel` is called. Hooks are dispatched as
        ordinary queue events (stable FIFO order at equal timestamps),
        so a *read-only* callback — one that samples counters without
        mutating simulation state — cannot perturb the behaviour of any
        other scheduled work. This is the attachment point for the
        observability layer's :class:`~repro.obs.timeseries.TimeseriesRecorder`.
        """
        if interval <= 0:
            raise SimulationError(f"hook interval must be positive (got {interval})")
        return PeriodicHook(self, interval, callback)

    def run(self, until: float | None = None) -> float:
        """Process events (optionally only up to time ``until``).

        Returns the simulation time when the loop stops:

        * the queue drained — when ``until`` is given the clock advances
          exactly to ``until``, otherwise it stays at the last event;
        * the next event lies beyond ``until`` — the clock advances
          exactly to ``until``;
        * an event called :meth:`stop` — the clock stays at that event's
          timestamp, *even when* ``until`` was given and the queue is
          empty. A stopped run never jumps ahead of the event that
          stopped it, so ``run(until=...)`` callers can rely on
          ``now == until`` if and only if the run was not stopped early.
        """
        dispatched_before = self.events_dispatched
        self._running = True
        stopped = False
        try:
            while self._running:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = self._queue.pop()
                assert event is not None
                if event.time < self._now - 1e-9:
                    raise SimulationError("event queue produced a past event")
                self._now = event.time
                self.events_dispatched += 1
                event.callback(*event.args)
            stopped = not self._running
        finally:
            self._running = False
        registry = get_registry()
        if registry.enabled:
            registry.counter("sim.events_dispatched").inc(
                self.events_dispatched - dispatched_before
            )
        if (
            not stopped
            and until is not None
            and self._queue.peek_time() is None
            and self._now < until
        ):
            self._now = until
        return self._now

    def stop(self) -> None:
        """Stop :meth:`run` after the current event finishes."""
        self._running = False

    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)
