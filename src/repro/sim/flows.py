"""Fluid flows and the scheduler that drives them to completion."""

from __future__ import annotations

import itertools
from typing import Callable

from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.sim.allocator import allocate_rates
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

_EPSILON_BYTES = 1e-6
_flow_ids = itertools.count()


class Flow:
    """A single data movement across a fixed set of resources.

    The flow occupies every resource in ``resources`` simultaneously (e.g.
    source uplink + destination downlink + destination disk) and advances
    at the max-min fair rate the allocator assigns.
    """

    __slots__ = (
        "id",
        "name",
        "size",
        "resources",
        "tag",
        "remaining",
        "rate",
        "started_at",
        "completed_at",
        "cancelled",
        "on_complete",
        "_obs_span",
    )

    def __init__(
        self,
        name: str,
        size: float,
        resources: tuple[Resource, ...],
        tag: str = "default",
    ) -> None:
        if size < 0:
            raise SimulationError(f"flow {name!r} has negative size")
        self.id = next(_flow_ids)
        self.name = name
        self.size = float(size)
        self.resources = tuple(resources)
        self.tag = tag
        self.remaining = float(size)
        self.rate = 0.0
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.cancelled = False
        self.on_complete: list[Callable[[Flow], None]] = []
        self._obs_span = None

    @property
    def done(self) -> bool:
        """True once the flow delivered all its bytes."""
        return self.completed_at is not None

    @property
    def transferred(self) -> float:
        """Bytes delivered so far."""
        return self.size - self.remaining

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<Flow {self.name} {self.transferred:.0f}/{self.size:.0f}B>"


class FlowScheduler:
    """Owns the active flow set; settles progress and reallocates rates.

    All mutations (start, cancel, capacity change) first *settle*: elapsed
    time since the last settle is converted into transferred bytes at the
    current rates and attributed to each resource's per-tag counters. Rate
    recomputation is deferred to an immediate event so that a burst of
    mutations at one timestamp pays for a single allocation pass.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.active: set[Flow] = set()
        self._last_settle = sim.now
        self._recompute_event = None
        self._completion_event = None

    def start_flow(self, flow: Flow) -> None:
        """Begin transferring ``flow``; completion callbacks fire later."""
        if flow.done or flow.cancelled:
            raise SimulationError(f"cannot start finished flow {flow.name!r}")
        self._settle()
        flow.started_at = self.sim.now
        tracer = get_tracer()
        if tracer.enabled:
            # One span per flow, mirrored onto every resource it occupies
            # so the exported trace shows one row per uplink/downlink/disk.
            flow._obs_span = tracer.span(
                "flow",
                track=tuple(res.name for res in flow.resources),
                flow=flow.name,
                size=flow.size,
                tag=flow.tag,
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("flows.started").inc()
        if flow.remaining <= _EPSILON_BYTES:
            # Zero-byte flow: complete immediately (still asynchronously,
            # so callers observe a consistent ordering).
            self.sim.schedule(0.0, self._complete_flow, flow)
            return
        self.active.add(flow)
        self._request_recompute()

    def cancel_flow(self, flow: Flow) -> None:
        """Abort a flow; its completion callbacks never fire."""
        flow.cancelled = True
        if flow._obs_span is not None:
            flow._obs_span.finish(status="cancelled")
            flow._obs_span = None
        registry = get_registry()
        if registry.enabled:
            registry.counter("flows.cancelled").inc()
        if flow in self.active:
            self._settle()
            self.active.discard(flow)
            self._request_recompute()

    def capacity_changed(self) -> None:
        """Re-run allocation after a resource capacity was modified."""
        self._settle()
        self._request_recompute()

    def settle_now(self) -> None:
        """Flush in-flight progress into the resource byte counters.

        Monitors call this before reading counters; otherwise bytes
        transferred since the last flow event would be invisible.
        """
        self._settle()

    # -- internal machinery -------------------------------------------------

    def _settle(self) -> None:
        now = self.sim.now
        dt = now - self._last_settle
        if dt <= 0:
            self._last_settle = now
            return
        for flow in self.active:
            delta = min(flow.remaining, flow.rate * dt)
            if delta <= 0:
                continue
            flow.remaining -= delta
            for res in flow.resources:
                res.account(flow.tag, delta)
        self._last_settle = now

    def _request_recompute(self) -> None:
        if self._recompute_event is None or self._recompute_event.cancelled:
            self._recompute_event = self.sim.schedule(0.0, self._do_recompute)

    def _do_recompute(self) -> None:
        self._recompute_event = None
        allocate_rates(self.active)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "flows.rebalanced", track="flows", active=len(self.active)
            )
        self._schedule_next_completion()

    def _schedule_next_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        next_finish = None
        for flow in self.active:
            if flow.rate <= 0:
                continue
            eta = flow.remaining / flow.rate if flow.rate != float("inf") else 0.0
            if next_finish is None or eta < next_finish:
                next_finish = eta
        if next_finish is not None:
            self._completion_event = self.sim.schedule(
                next_finish, self._on_completion_event
            )

    def _on_completion_event(self) -> None:
        self._completion_event = None
        self._settle()
        finished = [f for f in self.active if f.remaining <= _EPSILON_BYTES]
        for flow in finished:
            self.active.discard(flow)
        for flow in finished:
            self._complete_flow(flow)
        self._request_recompute()

    def _complete_flow(self, flow: Flow) -> None:
        if flow.done or flow.cancelled:
            return
        flow.remaining = 0.0
        flow.completed_at = self.sim.now
        if flow._obs_span is not None:
            flow._obs_span.finish()
            flow._obs_span = None
        registry = get_registry()
        if registry.enabled:
            registry.counter("flows.completed").inc()
            registry.counter("flows.bytes").inc(flow.size)
            if flow.started_at is not None:
                registry.histogram("flow.duration_s").observe(
                    flow.completed_at - flow.started_at
                )
        for callback in list(flow.on_complete):
            callback(flow)
