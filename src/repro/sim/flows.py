"""Fluid flows and the scheduler that drives them to completion."""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable

from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.sim.allocator import RateAllocator
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

_EPSILON_BYTES = 1e-6
#: Completion entries within this many simulated seconds of the event
#: timestamp are treated as due (guards float drift in ETA arithmetic).
_EPSILON_TIME = 1e-9
_INF = float("inf")
_flow_ids = itertools.count()


class Flow:
    """A single data movement across a fixed set of resources.

    The flow occupies every resource in ``resources`` simultaneously (e.g.
    source uplink + destination downlink + destination disk) and advances
    at the max-min fair rate the allocator assigns.

    Hot state (``remaining``, ``rate``, settle stamp, ETA) is stored in
    plain slots until the flow is attached to a
    :class:`repro.sim.kernel.FlowKernel`, after which the same properties
    read and write the kernel's columnar arrays at the flow's slot — so
    consumers (transfers, monitors, tests) never need to know which
    scheduler owns the flow.
    """

    __slots__ = (
        "id",
        "name",
        "size",
        "resources",
        "tag",
        "started_at",
        "completed_at",
        "cancelled",
        "on_complete",
        "_obs_span",
        "_rem_v",
        "_rate_v",
        "_settled_v",
        "_eta_v",
        "_kernel",
        "_slot",
    )

    def __init__(
        self,
        name: str,
        size: float,
        resources: tuple[Resource, ...],
        tag: str = "default",
    ) -> None:
        if size < 0:
            raise SimulationError(f"flow {name!r} has negative size")
        self.id = next(_flow_ids)
        self.name = name
        self.size = float(size)
        self.resources = tuple(resources)
        self.tag = tag
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.cancelled = False
        self.on_complete: list[Callable[[Flow], None]] = []
        self._obs_span = None
        self._rem_v = float(size)
        self._rate_v = 0.0
        self._settled_v = 0.0
        self._eta_v: float | None = None
        self._kernel = None  # FlowKernel | None
        self._slot = -1

    @property
    def remaining(self) -> float:
        """Bytes left to deliver."""
        kernel = self._kernel
        if kernel is None:
            return self._rem_v
        return float(kernel.remaining[self._slot])

    @remaining.setter
    def remaining(self, value: float) -> None:
        kernel = self._kernel
        if kernel is None:
            self._rem_v = value
        else:
            kernel.remaining[self._slot] = value

    @property
    def rate(self) -> float:
        """Current allocated transfer rate (bytes/s)."""
        kernel = self._kernel
        if kernel is None:
            return self._rate_v
        return float(kernel.rate[self._slot])

    @rate.setter
    def rate(self, value: float) -> None:
        kernel = self._kernel
        if kernel is None:
            self._rate_v = value
        else:
            kernel.rate[self._slot] = value

    @property
    def _settled_at(self) -> float:
        kernel = self._kernel
        if kernel is None:
            return self._settled_v
        return float(kernel.settled_at[self._slot])

    @_settled_at.setter
    def _settled_at(self, value: float) -> None:
        kernel = self._kernel
        if kernel is None:
            self._settled_v = value
        else:
            kernel.settled_at[self._slot] = value

    @property
    def _eta(self) -> float | None:
        kernel = self._kernel
        if kernel is None:
            return self._eta_v
        eta = kernel.eta[self._slot]
        return None if eta == _INF else float(eta)

    @_eta.setter
    def _eta(self, value: float | None) -> None:
        kernel = self._kernel
        if kernel is None:
            self._eta_v = value
        else:
            kernel.eta[self._slot] = _INF if value is None else value

    @property
    def done(self) -> bool:
        """True once the flow delivered all its bytes."""
        return self.completed_at is not None

    @property
    def transferred(self) -> float:
        """Bytes delivered so far."""
        return self.size - self.remaining

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<Flow {self.name} {self.transferred:.0f}/{self.size:.0f}B>"


class FlowScheduler:
    """Owns the active flow set; settles progress and reallocates rates.

    Mutations (start, cancel, capacity change) register with the
    allocator, which tracks the resources each one touched; the actual
    rate recomputation is deferred to an immediate event so that a burst
    of mutations at one timestamp pays for a single allocation *epoch*.
    Each epoch re-rates only the contention component reachable from the
    touched resources (see :class:`repro.sim.allocator.RateAllocator`);
    flows outside it keep their rates, and their in-flight progress is
    settled lazily — per flow, when its rate next changes, when it
    completes, or when a monitor calls :meth:`settle_now`.

    Completions are tracked in a lazy min-heap keyed by each flow's
    estimated finish time. A rate change pushes a fresh entry and
    invalidates the old one (stale entries are skipped on pop), so
    finding the next completion costs O(log flows) instead of a linear
    scan of the active set.

    ``py_flow_ops`` counts per-flow Python-level hot-path operations
    (settles, rate/ETA rewrites, completion-scan pops) — the scaling
    benchmarks use it to compare this dict-backed scheduler against the
    columnar :class:`repro.sim.kernel.ColumnarFlowScheduler`.
    """

    def __init__(self, sim: Simulator, allocator: RateAllocator | None = None) -> None:
        self.sim = sim
        # Insertion-ordered dict used as a set: Flow hashes by identity,
        # and iteration (settle_now's float accumulation order) must be
        # reproducible run-to-run for deterministic replay.
        self.active: dict[Flow, None] = {}
        self.allocator = allocator if allocator is not None else RateAllocator()
        self.py_flow_ops = 0
        self._recompute_event = None
        self._completion_event = None
        self._eta_heap: list[tuple[float, int, Flow]] = []
        self._eta_seq = itertools.count()

    def start_flow(self, flow: Flow) -> None:
        """Begin transferring ``flow``; completion callbacks fire later."""
        if flow.done or flow.cancelled:
            raise SimulationError(f"cannot start finished flow {flow.name!r}")
        flow.started_at = self.sim.now
        flow._settled_at = self.sim.now
        tracer = get_tracer()
        if tracer.enabled:
            # One span per flow, mirrored onto every resource it occupies
            # so the exported trace shows one row per uplink/downlink/disk.
            flow._obs_span = tracer.span(
                "flow",
                track=tuple(res.name for res in flow.resources),
                flow=flow.name,
                size=flow.size,
                tag=flow.tag,
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("flows.started").inc()
        if flow.remaining <= _EPSILON_BYTES:
            # Zero-byte flow: complete immediately (still asynchronously,
            # so callers observe a consistent ordering).
            self.sim.schedule(0.0, self._complete_flow, flow)
            return
        self.active[flow] = None
        self.allocator.add_flow(flow)
        self._request_recompute()

    def cancel_flow(self, flow: Flow) -> None:
        """Abort a flow; its completion callbacks never fire.

        Idempotent, and a no-op for flows that already completed (a
        finished flow cannot be un-finished, and counting it as cancelled
        would double-book it). A flow that was never started is only
        marked cancelled — so a later :meth:`start_flow` raises — without
        touching counters or the active set.
        """
        if flow.done or flow.cancelled:
            return
        flow.cancelled = True
        if flow._obs_span is not None:
            flow._obs_span.finish(status="cancelled")
            flow._obs_span = None
        if flow.started_at is None:
            return
        registry = get_registry()
        if registry.enabled:
            registry.counter("flows.cancelled").inc()
        if flow in self.active:
            self._settle_flow(flow)
            self.active.pop(flow, None)
            self.allocator.remove_flow(flow)
            flow._eta = None
            self._request_recompute()

    def capacity_changed(self, *resources: Resource) -> None:
        """Re-run allocation after resource capacities were modified.

        Passing the changed resources re-rates only their contention
        component; with no arguments every active flow is re-rated.
        """
        self.allocator.mark_dirty(*resources)
        self._request_recompute()

    def settle_now(self) -> None:
        """Flush in-flight progress into the resource byte counters.

        Monitors call this before reading counters; otherwise bytes
        transferred since each flow's last settle would be invisible.
        """
        for flow in self.active:
            self._settle_flow(flow)

    # -- internal machinery -------------------------------------------------

    def _settle_flow(self, flow: Flow) -> None:
        self.py_flow_ops += 1
        now = self.sim.now
        dt = now - flow._settled_at
        if dt <= 0:
            flow._settled_at = now
            return
        delta = min(flow.remaining, flow.rate * dt)
        if delta > 0:
            flow.remaining -= delta
            for res in flow.resources:
                res.account(flow.tag, delta)
        flow._settled_at = now

    def _request_recompute(self) -> None:
        if self._recompute_event is None or self._recompute_event.cancelled:
            self._recompute_event = self.sim.schedule(0.0, self._do_recompute)

    def _do_recompute(self) -> None:
        self._recompute_event = None
        registry = get_registry()
        wall_start = time.perf_counter() if registry.enabled else 0.0
        touched = self.allocator.recompute(on_touch=self._settle_flow)
        self.py_flow_ops += len(touched)
        now = self.sim.now
        for flow in touched:
            if flow not in self.active:
                continue
            if flow.rate > 0:
                if flow.rate == float("inf"):
                    eta = now
                else:
                    eta = now + flow.remaining / flow.rate
                if flow._eta is not None and abs(eta - flow._eta) <= _EPSILON_TIME:
                    # The rate came out unchanged: the existing heap
                    # entry still points at the right time, so skip the
                    # push and keep the heap free of duplicates.
                    continue
                flow._eta = eta
                heapq.heappush(self._eta_heap, (eta, next(self._eta_seq), flow))
            else:
                flow._eta = None
        if registry.enabled:
            registry.counter("alloc.passes").inc()
            registry.counter("alloc.flows_touched").inc(len(touched))
            registry.histogram("alloc.component_size").observe(len(touched))
            registry.histogram("alloc.duration_s").observe(
                time.perf_counter() - wall_start
            )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "flows.rebalanced",
                track="flows",
                active=len(self.active),
                touched=len(touched),
            )
        self._sync_completion_event()

    def _earliest_eta(self) -> float | None:
        """Earliest live completion ETA, or None when nothing is pending."""
        heap = self._eta_heap
        while heap:
            eta, _, flow = heap[0]
            if flow._eta == eta and flow in self.active:
                return eta
            heapq.heappop(heap)  # stale: rate changed, cancelled, or done
        return None

    def _sync_completion_event(self) -> None:
        """Point the single completion event at the earliest live ETA."""
        earliest = self._earliest_eta()
        if earliest is None:
            if self._completion_event is not None:
                self._completion_event.cancel()
                self._completion_event = None
            return
        target = max(earliest, self.sim.now)
        if self._completion_event is not None:
            if not self._completion_event.cancelled and (
                self._completion_event.time == target
            ):
                return
            self._completion_event.cancel()
        self._completion_event = self.sim.call_at(target, self._on_completion_event)

    def _on_completion_event(self) -> None:
        self._completion_event = None
        now = self.sim.now
        heap = self._eta_heap
        finished: list[Flow] = []
        while heap:
            eta, _, flow = heap[0]
            if flow._eta != eta or flow not in self.active:
                heapq.heappop(heap)
                continue
            if eta > now + _EPSILON_TIME:
                break
            heapq.heappop(heap)
            self.py_flow_ops += 1
            self._settle_flow(flow)
            if flow.remaining <= _EPSILON_BYTES or (
                flow.rate > 0 and flow.remaining <= flow.rate * _EPSILON_TIME
            ):
                # Done, or the residue finishes within the due window —
                # at Gb/s rates a byte-scale sliver has a sub-nanosecond
                # ETA, and retrying it at this same timestamp can never
                # make progress (dt == 0). _complete_flow accounts the
                # residual bytes.
                finished.append(flow)
            elif flow.rate > 0:
                # Float drift left unfinished bytes; re-index the flow.
                flow._eta = now + flow.remaining / flow.rate
                heapq.heappush(heap, (flow._eta, next(self._eta_seq), flow))
            else:  # pragma: no cover - defensive; a due entry implies
                # the rate it was computed with is still in force.
                flow._eta = None
        for flow in finished:
            self.active.pop(flow, None)
            self.allocator.remove_flow(flow)
            flow._eta = None
        for flow in finished:
            self._complete_flow(flow)
        if finished:
            self._request_recompute()
        self._sync_completion_event()

    def _complete_flow(self, flow: Flow) -> None:
        if flow.done or flow.cancelled:
            return
        if flow.remaining > 0:
            # Attribute the sub-epsilon residue so resource byte
            # counters conserve the flow's full size.
            for res in flow.resources:
                res.account(flow.tag, flow.remaining)
        flow.remaining = 0.0
        flow.completed_at = self.sim.now
        if flow._obs_span is not None:
            flow._obs_span.finish()
            flow._obs_span = None
        registry = get_registry()
        if registry.enabled:
            registry.counter("flows.completed").inc()
            registry.counter("flows.bytes").inc(flow.size)
            if flow.started_at is not None:
                registry.histogram("flow.duration_s").observe(
                    flow.completed_at - flow.started_at
                )
        for callback in list(flow.on_complete):
            callback(flow)
