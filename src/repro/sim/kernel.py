"""Columnar flow-state kernel: numpy-backed hot state for 100k-flow scale.

The dict-backed :class:`repro.sim.flows.FlowScheduler` and
:class:`repro.sim.allocator.RateAllocator` touch Python objects once per
flow per epoch, which caps practical scale at a few thousand concurrent
flows. This module keeps the same observable behaviour — byte-identical
rates, completion times and ordering, enforced by the equivalence
battery in ``tests/test_allocator_equivalence.py`` — while storing the
hot state in flat numpy arrays:

* :class:`FlowKernel` — the columnar store. Each registered flow owns a
  stable *slot* indexing parallel arrays (remaining bytes, rate, settle
  stamp, ETA + ETA sequence number, size, tag id) plus a CSR row of
  resource slots in a shared arena. Per-resource membership lives in
  append-only slot buffers (ascending slot order == registration order,
  which is exactly the insertion order the dict path iterates in).
  Slots are never reused; dead entries are reclaimed by an
  order-preserving compaction when the dead fraction grows.
* :class:`ColumnarRateAllocator` — drop-in replacement for
  ``RateAllocator``: vectorised component discovery and progressive
  fill. Byte-equality with the dict path holds because both sides
  perform the same IEEE-754 operations in the same order (see
  ``_progressive_fill``'s floating-point contract and
  :func:`_fold_argmin` below).
* :class:`ColumnarFlowScheduler` — drop-in replacement for
  ``FlowScheduler``: batch settle, vectorised ETA-index maintenance
  (an ``(eta, seq)`` column pair replacing the lazy heap), and
  one-pass coalescing of all same-instant completions.

Byte-equality invariants (change one side, change both):

* Freeze-round usage subtraction is one fused ``share * count`` product
  per resource (both paths).
* Bottleneck selection replicates the dict fold exactly: every fold
  update is a strict prefix-minimum improvement, so running the exact
  Python fold over just those candidates gives the identical pick.
* ETA is ``now + remaining / rate`` on both paths (``rate == inf``
  gives ``now + 0.0 == now`` exactly), and the ``(eta, seq)`` lexsort
  order equals the heap's ``(eta, push-seq)`` pop order.
"""

from __future__ import annotations

import time
from typing import Callable, KeysView

import numpy as np

from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.sim.allocator import _SHARE_SLACK, AllocatableFlow, _unique_resources
from repro.sim.engine import Simulator
from repro.sim.flows import _EPSILON_BYTES, _EPSILON_TIME, Flow, FlowScheduler
from repro.sim.resources import Resource

_INF = float("inf")
_EMPTY_SLOTS = np.empty(0, dtype=np.int64)


def _grown(arr: np.ndarray, new_len: int) -> np.ndarray:
    """A copy of ``arr`` grown to ``new_len`` (tail left zeroed/False)."""
    out = np.zeros(new_len, dtype=arr.dtype)
    out[: len(arr)] = arr
    return out


def _gather(values: np.ndarray, starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenate ``values[starts[i] : starts[i] + lens[i]]`` row-major."""
    total = int(lens.sum())
    if total == 0:
        return values[:0]
    out_off = np.cumsum(lens) - lens
    pos = np.arange(total, dtype=np.int64) + np.repeat(starts - out_off, lens)
    return values[pos]


def _fold_argmin(shares: np.ndarray) -> int:
    """Index the dict path's bottleneck fold would pick over ``shares``.

    The dict fold updates its best share at index ``i`` only when
    ``shares[i] < best - _SHARE_SLACK``. Since ``best`` always sits
    within ``_SHARE_SLACK`` above the running prefix minimum, every
    update index is also a *strict* prefix-minimum improvement — so the
    exact Python fold only needs to visit those few candidates (O(log n)
    expected) to reproduce the identical pick. Returns -1 when the fold
    would leave no bottleneck (empty input).
    """
    n = shares.size
    if n == 0:  # pragma: no cover - defensive, mirrors dict fold guard
        return -1
    prev = np.empty(n)
    prev[0] = _INF
    if n > 1:
        np.minimum.accumulate(shares[:-1], out=prev[1:])
    best = _INF
    pick = -1
    for i in np.flatnonzero(shares < prev):
        share = shares[i]
        if share < best - _SHARE_SLACK:
            best = share
            pick = int(i)
    return pick


class FlowKernel:
    """Columnar store for flow and resource hot state.

    Array-index lifecycle: :meth:`attach` hands out monotonically
    increasing slots (never reused), :meth:`detach` tombstones a slot
    (``alive[slot] = False``) after folding the flow's transferred bytes
    into its resources' base counters, and when the arrays fill up while
    at least half the slots are dead, :meth:`_compact_slots` renumbers
    the live slots order-preservingly (so ascending-slot iteration keeps
    meaning registration order) and notifies ``on_remap`` listeners.
    """

    def __init__(self, capacity: int = 64) -> None:
        cap = max(16, int(capacity))
        self.remaining = np.zeros(cap)
        self.rate = np.zeros(cap)
        self.settled_at = np.zeros(cap)
        self.eta = np.full(cap, _INF)
        self.eta_seq = np.zeros(cap, dtype=np.int64)
        self.size = np.zeros(cap)
        self.tag_id = np.zeros(cap, dtype=np.int64)
        self.row_start = np.zeros(cap, dtype=np.int64)
        self.row_len = np.zeros(cap, dtype=np.int64)
        self.alive = np.zeros(cap, dtype=bool)
        self.backed = np.zeros(cap, dtype=bool)
        self.flows: list = [None] * cap
        self.hi = 0
        self.n_alive = 0
        self.on_remap: list[Callable[[np.ndarray], None]] = []
        self._arena = np.zeros(cap * 4, dtype=np.int64)
        # Occurrence count of each row's resource in the flow's raw
        # resource tuple: the dict path accounts bytes once per
        # *occurrence* (a duplicated resource is charged twice), while
        # rate math uses the deduplicated row.
        self._arena_mult = np.zeros(cap * 4, dtype=np.int64)
        self._arena_n = 0
        # Resources (registered lazily, never unregistered).
        self.res_capacity = np.zeros(16)
        self.res_live = np.zeros(16, dtype=np.int64)
        self.res_objects: list[Resource] = []
        self._res_members: list[np.ndarray] = []
        self._res_members_mult: list[np.ndarray] = []
        self._res_members_n: list[int] = []
        self._res_dead: list[int] = []
        # Tag interning for per-tag byte attribution.
        self._tag_names: list[str] = []
        self._tag_index: dict[str, int] = {}
        self._next_eta_seq = 0

    # -- resources ----------------------------------------------------------

    def register_resource(self, res: Resource) -> int:
        """Bind ``res`` to this kernel (idempotent) and return its slot."""
        if res._kernel is self:
            return res._kslot
        if res._kernel is not None:
            raise SimulationError(
                f"resource {res.name!r} is already bound to another kernel"
            )
        slot = len(self.res_objects)
        if slot == len(self.res_capacity):
            self.res_capacity = _grown(self.res_capacity, slot * 2)
            self.res_live = _grown(self.res_live, slot * 2)
        self.res_capacity[slot] = res.capacity
        self.res_objects.append(res)
        self._res_members.append(np.zeros(8, dtype=np.int64))
        self._res_members_mult.append(np.zeros(8, dtype=np.int64))
        self._res_members_n.append(0)
        self._res_dead.append(0)
        res._kernel = self
        res._kslot = slot
        return slot

    def live_members(self, res_slot: int) -> np.ndarray:
        """Live flow slots crossing the resource, in registration order."""
        buf = self._res_members[res_slot][: self._res_members_n[res_slot]]
        return buf[self.alive[buf]]

    def resource_bytes(self, res_slot: int, base: dict[str, float]) -> dict[str, float]:
        """Per-tag byte counters: folded base plus live in-flight progress."""
        out = dict(base)
        count = self._res_members_n[res_slot]
        buf = self._res_members[res_slot][:count]
        mask = self.alive[buf]
        members = buf[mask]
        if members.size:
            mult = self._res_members_mult[res_slot][:count][mask]
            transferred = (self.size[members] - self.remaining[members]) * mult
            sums = np.bincount(
                self.tag_id[members],
                weights=transferred,
                minlength=len(self._tag_names),
            )
            for tid in np.flatnonzero(sums):
                name = self._tag_names[tid]
                out[name] = out.get(name, 0.0) + float(sums[tid])
        return out

    def _compact_members(self, res_slot: int) -> None:
        count = self._res_members_n[res_slot]
        buf = self._res_members[res_slot][:count]
        mask = self.alive[buf]
        live = buf[mask]
        mult = self._res_members_mult[res_slot][:count][mask]
        new_buf = np.zeros(max(8, 2 * live.size), dtype=np.int64)
        new_mult = np.zeros(max(8, 2 * live.size), dtype=np.int64)
        new_buf[: live.size] = live
        new_mult[: live.size] = mult
        self._res_members[res_slot] = new_buf
        self._res_members_mult[res_slot] = new_mult
        self._res_members_n[res_slot] = int(live.size)
        self._res_dead[res_slot] = 0

    # -- flow slots ---------------------------------------------------------

    def _tag(self, tag: str) -> int:
        tid = self._tag_index.get(tag)
        if tid is None:
            tid = len(self._tag_names)
            self._tag_index[tag] = tid
            self._tag_names.append(tag)
        return tid

    def attach(self, flow: AllocatableFlow) -> int:
        """Register ``flow`` and return its slot.

        The flow's resource tuple is deduplicated into the CSR row (with
        per-resource occurrence counts kept for byte accounting). The
        flow's current hot values are copied into the arrays; if the
        flow object supports it (``Flow`` does), it is then *backed* by
        the kernel — its ``remaining``/``rate``/ETA properties read and
        write the arrays directly from here until :meth:`detach`.
        """
        if self.hi == len(self.alive):
            self._grow_or_compact()
        slot = self.hi
        self.hi += 1
        occurrences: dict[Resource, int] = {}
        for res in flow.resources:
            occurrences[res] = occurrences.get(res, 0) + 1
        row = np.fromiter(
            (self.register_resource(res) for res in occurrences),
            dtype=np.int64,
            count=len(occurrences),
        )
        mult = np.fromiter(
            occurrences.values(), dtype=np.int64, count=len(occurrences)
        )
        need = self._arena_n + row.size
        if need > len(self._arena):
            self._arena = _grown(self._arena, max(need, 2 * len(self._arena)))
            self._arena_mult = _grown(self._arena_mult, len(self._arena))
        self._arena[self._arena_n : need] = row
        self._arena_mult[self._arena_n : need] = mult
        self.row_start[slot] = self._arena_n
        self.row_len[slot] = row.size
        self._arena_n = need
        self.remaining[slot] = getattr(flow, "remaining", 0.0)
        self.rate[slot] = flow.rate
        self.settled_at[slot] = getattr(flow, "_settled_at", 0.0)
        eta = getattr(flow, "_eta", None)
        self.eta[slot] = _INF if eta is None else eta
        self.eta_seq[slot] = 0
        self.size[slot] = getattr(flow, "size", 0.0)
        self.tag_id[slot] = self._tag(getattr(flow, "tag", "default"))
        self.alive[slot] = True
        self.flows[slot] = flow
        self.n_alive += 1
        for res_slot, res_mult in zip(row, mult):
            res_slot = int(res_slot)
            buf = self._res_members[res_slot]
            n = self._res_members_n[res_slot]
            if n == len(buf):
                self._res_members[res_slot] = buf = _grown(buf, max(8, 2 * n))
                self._res_members_mult[res_slot] = _grown(
                    self._res_members_mult[res_slot], len(buf)
                )
            buf[n] = slot
            self._res_members_mult[res_slot][n] = res_mult
            self._res_members_n[res_slot] = n + 1
            self.res_live[res_slot] += 1
        try:
            flow._kernel = self
            flow._slot = slot
            self.backed[slot] = True
        except AttributeError:
            self.backed[slot] = False
        return slot

    def detach(self, slot: int) -> None:
        """Tombstone ``slot``: fold its transferred bytes into the base
        counters of its resources and (for backed flows) copy the hot
        values back onto the object."""
        if not self.alive[slot]:
            return
        flow = self.flows[slot]
        transferred = float(self.size[slot] - self.remaining[slot])
        if self.backed[slot]:
            flow._kernel = None
            flow._slot = -1
            flow._rem_v = float(self.remaining[slot])
            flow._rate_v = float(self.rate[slot])
            flow._settled_v = float(self.settled_at[slot])
            eta = float(self.eta[slot])
            flow._eta_v = None if eta == _INF else eta
        start = int(self.row_start[slot])
        stop = start + int(self.row_len[slot])
        row = self._arena[start:stop]
        if transferred > 0.0:
            tag = self._tag_names[int(self.tag_id[slot])]
            for res_slot, res_mult in zip(row, self._arena_mult[start:stop]):
                self.res_objects[int(res_slot)]._bytes[tag] += transferred * int(
                    res_mult
                )
        self.alive[slot] = False
        self.flows[slot] = None
        self.n_alive -= 1
        for res_slot in row:
            res_slot = int(res_slot)
            self.res_live[res_slot] -= 1
            dead = self._res_dead[res_slot] + 1
            self._res_dead[res_slot] = dead
            if dead > 32 and dead > self.res_live[res_slot]:
                self._compact_members(res_slot)

    def _grow_or_compact(self) -> None:
        cap = len(self.alive)
        if 2 * self.n_alive <= cap and self.hi - self.n_alive >= 32:
            self._compact_slots()
        else:
            new_cap = 2 * cap
            for name in (
                "remaining",
                "rate",
                "settled_at",
                "eta_seq",
                "size",
                "tag_id",
                "row_start",
                "row_len",
                "alive",
                "backed",
            ):
                setattr(self, name, _grown(getattr(self, name), new_cap))
            eta = np.full(new_cap, _INF)
            eta[:cap] = self.eta
            self.eta = eta
            self.flows.extend([None] * cap)

    def _compact_slots(self) -> None:
        """Order-preserving reclamation of dead slots.

        Live slots are renumbered 0..n-1 in ascending (registration)
        order, so every ordering invariant survives; member buffers and
        the CSR arena are rewritten, backed flows get their ``_slot``
        updated, and ``on_remap`` listeners (the allocator's slot map)
        receive the old→new mapping (-1 for dead slots).
        """
        live = np.flatnonzero(self.alive[: self.hi])
        remap = np.full(self.hi, -1, dtype=np.int64)
        remap[live] = np.arange(live.size, dtype=np.int64)
        lens = self.row_len[live].copy()
        flat = _gather(self._arena, self.row_start[live], lens)
        flat_mult = _gather(self._arena_mult, self.row_start[live], lens)
        for name in (
            "remaining",
            "rate",
            "settled_at",
            "eta",
            "eta_seq",
            "size",
            "tag_id",
        ):
            arr = getattr(self, name)
            arr[: live.size] = arr[live]
        self.row_len[: live.size] = lens
        self.row_start[: live.size] = np.cumsum(lens) - lens
        self._arena[: flat.size] = flat
        self._arena_mult[: flat.size] = flat_mult
        self._arena_n = int(flat.size)
        new_flows = [self.flows[int(s)] for s in live]
        for i, flow in enumerate(new_flows):
            self.flows[i] = flow
            if self.backed[int(live[i])]:
                flow._slot = i
        for i in range(live.size, self.hi):
            self.flows[i] = None
        self.backed[: live.size] = self.backed[live]
        self.alive[: live.size] = True
        self.alive[live.size : self.hi] = False
        self.hi = int(live.size)
        for res_slot in range(len(self.res_objects)):
            count = self._res_members_n[res_slot]
            buf = self._res_members[res_slot][:count]
            mapped = remap[buf]
            keep = mapped >= 0
            mapped = mapped[keep]
            mult = self._res_members_mult[res_slot][:count][keep]
            new_buf = np.zeros(max(8, 2 * mapped.size), dtype=np.int64)
            new_mult = np.zeros(max(8, 2 * mapped.size), dtype=np.int64)
            new_buf[: mapped.size] = mapped
            new_mult[: mapped.size] = mult
            self._res_members[res_slot] = new_buf
            self._res_members_mult[res_slot] = new_mult
            self._res_members_n[res_slot] = int(mapped.size)
            self._res_dead[res_slot] = 0
        for listener in self.on_remap:
            listener(remap)

    def gather_rows(self, slots: np.ndarray) -> np.ndarray:
        """Concatenated resource rows of ``slots`` (flow-major order)."""
        return _gather(self._arena, self.row_start[slots], self.row_len[slots])

    # -- batch hot-path operations ------------------------------------------

    def settle(self, slots: np.ndarray, now: float) -> None:
        """Advance ``slots`` to ``now`` at their current rates (batch).

        Elementwise identical to ``FlowScheduler._settle_flow``: clamp
        non-positive dt to a stamp refresh, otherwise subtract
        ``min(remaining, rate * dt)``.
        """
        if slots.size == 0:
            return
        dt = now - self.settled_at[slots]
        self.settled_at[slots] = now
        pos = dt > 0.0
        if not pos.any():
            return
        moving = slots[pos]
        delta = np.minimum(self.remaining[moving], self.rate[moving] * dt[pos])
        self.remaining[moving] -= delta

    def min_eta(self) -> float:
        """Smallest live ETA (inf when no attached flow has one)."""
        if self.n_alive == 0 or self.hi == 0:
            return _INF
        return float(
            np.min(np.where(self.alive[: self.hi], self.eta[: self.hi], _INF))
        )

    def due_slots(self, cutoff: float) -> np.ndarray:
        """Live slots with ``eta <= cutoff``, in heap pop order.

        The dict path pops its completion heap by ``(eta, push-seq)``;
        lexsorting the due set by ``(eta, eta_seq)`` reproduces that
        order exactly, because a slot's ``eta_seq`` is bumped precisely
        when the dict path would push a fresh heap entry.
        """
        if self.hi == 0:
            return _EMPTY_SLOTS
        mask = self.alive[: self.hi] & (self.eta[: self.hi] <= cutoff)
        due = np.flatnonzero(mask)
        if due.size > 1:
            due = due[np.lexsort((self.eta_seq[due], self.eta[due]))]
        return due

    def next_eta_seqs(self, count: int) -> np.ndarray:
        """Reserve ``count`` fresh ETA sequence numbers (monotonic)."""
        start = self._next_eta_seq
        self._next_eta_seq = start + count
        return np.arange(start, start + count, dtype=np.int64)


class ColumnarRateAllocator:
    """Incremental max-min allocator over a :class:`FlowKernel`.

    Implements the :class:`repro.sim.allocator.RateAllocator` protocol
    (``add_flow``/``remove_flow``/``mark_dirty``/``recompute``) with
    vectorised component discovery and progressive filling, producing
    byte-identical rates in the identical order. Works with arbitrary
    ``AllocatableFlow`` objects: flows that cannot be kernel-backed
    (e.g. test stubs) get their ``rate`` attribute written back after
    each recompute — but their rate must then only be mutated through
    this allocator, since the kernel's copy is authoritative.
    """

    def __init__(self, kernel: FlowKernel | None = None) -> None:
        self.kernel = kernel if kernel is not None else FlowKernel()
        self._slot_of: dict[AllocatableFlow, int] = {}
        self._dirty: dict[Resource, None] = {}
        self._all_dirty = False
        self._fresh_slots: list[int] = []
        self.kernel.on_remap.append(self._apply_remap)

    def _apply_remap(self, remap: np.ndarray) -> None:
        self._slot_of = {
            flow: int(remap[slot]) for flow, slot in self._slot_of.items()
        }
        self._fresh_slots = [
            int(remap[slot]) for slot in self._fresh_slots if remap[slot] >= 0
        ]

    def __len__(self) -> int:
        return len(self._slot_of)

    @property
    def flows(self) -> KeysView[AllocatableFlow]:
        """The registered (active) flows."""
        return self._slot_of.keys()

    def add_flow(self, flow: AllocatableFlow) -> None:
        """Register ``flow``; its resources become dirty."""
        if flow in self._slot_of:
            return
        unique = _unique_resources(flow)
        slot = self.kernel.attach(flow)
        self._slot_of[flow] = slot
        self._fresh_slots.append(slot)
        for res in unique:
            self._dirty[res] = None

    def remove_flow(self, flow: AllocatableFlow) -> None:
        """Unregister ``flow`` (completed or cancelled); resources dirty."""
        slot = self._slot_of.pop(flow, None)
        if slot is None:
            return
        kernel = self.kernel
        start = int(kernel.row_start[slot])
        row = kernel._arena[start : start + int(kernel.row_len[slot])]
        for res_slot in row:
            self._dirty[kernel.res_objects[int(res_slot)]] = None
        kernel.detach(slot)

    def mark_dirty(self, *resources: Resource) -> None:
        """Mark capacity-changed resources; no arguments marks everything."""
        if not resources:
            self._all_dirty = True
        else:
            self._dirty.update(dict.fromkeys(resources))

    def recompute(
        self, on_touch: Callable[[AllocatableFlow], None] | None = None
    ) -> list[AllocatableFlow]:
        """RateAllocator-protocol recompute returning changed flow objects."""
        kernel = self.kernel
        presettle = None
        if on_touch is not None:

            def presettle(slots):
                for slot in slots:
                    on_touch(kernel.flows[int(slot)])

        changed = self.recompute_slots(presettle)
        out = []
        for slot in changed:
            slot = int(slot)
            flow = kernel.flows[slot]
            if not kernel.backed[slot]:
                flow.rate = float(kernel.rate[slot])
            out.append(flow)
        return out

    def recompute_slots(
        self, presettle: Callable[[np.ndarray], None] | None = None
    ) -> np.ndarray:
        """Re-rate the dirty component; return changed slots in rate order.

        ``presettle`` (if given) receives the changed slots *before*
        their new rates land, mirroring the dict path's ``on_touch``.
        """
        kernel = self.kernel
        comp = self._component()
        self._dirty.clear()
        self._all_dirty = False
        self._fresh_slots = []
        if comp.size == 0:
            return _EMPTY_SLOTS
        if comp.size == 1:
            # Single-flow fast path: rate is the tightest capacity.
            slot = int(comp[0])
            start = int(kernel.row_start[slot])
            length = int(kernel.row_len[slot])
            if length:
                rate = float(
                    kernel.res_capacity[kernel._arena[start : start + length]].min()
                )
            else:
                rate = _INF
            if rate != kernel.rate[slot]:
                if presettle is not None:
                    presettle(comp)
                kernel.rate[slot] = rate
                return comp
            return _EMPTY_SLOTS
        rates, order = self._fill(comp)
        moved = order[rates[order] != kernel.rate[comp[order]]]
        changed = comp[moved]
        if changed.size:
            if presettle is not None:
                presettle(changed)
            kernel.rate[changed] = rates[moved]
        return changed

    def _component(self) -> np.ndarray:
        """Flow slots reachable from the dirty resources, discovery order.

        Replicates the dict path's DFS exactly: LIFO resource stack
        seeded in dirty-insertion order, members visited in registration
        order, each new flow's resources pushed immediately (filtered by
        the visited set as of the push, which only mutates at pops).
        """
        kernel = self.kernel
        if self._all_dirty:
            if not self._slot_of:
                return _EMPTY_SLOTS
            return np.fromiter(
                self._slot_of.values(), dtype=np.int64, count=len(self._slot_of)
            )
        parts: list[np.ndarray] = []
        in_comp = np.zeros(kernel.hi, dtype=bool)
        visited = np.zeros(len(kernel.res_objects), dtype=bool)
        stack: list[int] = [
            res._kslot
            for res in self._dirty
            if res._kernel is kernel and kernel.res_live[res._kslot] > 0
        ]
        while stack:
            res_slot = stack.pop()
            if visited[res_slot]:
                continue
            visited[res_slot] = True
            members = kernel.live_members(res_slot)
            new = members[~in_comp[members]]
            if new.size:
                in_comp[new] = True
                parts.append(new)
                rows = kernel.gather_rows(new)
                stack.extend(int(r) for r in rows[~visited[rows]])
        if self._fresh_slots:
            # Resource-less fresh flows sit in no member buffer; they
            # still need their (unbounded) rate assigned once.
            extra = [
                slot
                for slot in self._fresh_slots
                if kernel.alive[slot] and kernel.row_len[slot] == 0
            ]
            if extra:
                parts.append(np.asarray(extra, dtype=np.int64))
        if not parts:
            return _EMPTY_SLOTS
        return np.concatenate(parts)

    def _fill(self, comp: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised progressive fill over component ``comp``.

        Returns ``(rates, order)``: per-comp-index rates plus the
        comp-local indices in the order the dict path would insert them
        into its rates dict (resource-less flows first, then each freeze
        round) — the order changed-rate flows are reported in.
        """
        kernel = self.kernel
        n_flows = comp.size
        lens = kernel.row_len[comp]
        flat = kernel.gather_rows(comp)
        rates = np.empty(n_flows)
        zero_res = lens == 0
        rates[zero_res] = _INF
        order_parts: list[np.ndarray] = [np.flatnonzero(zero_res)]
        if flat.size:
            # Local resource ids in first-appearance order == the order
            # the dict path inserts resources into its ``users`` dict.
            uniq, first_pos, inverse = np.unique(
                flat, return_index=True, return_inverse=True
            )
            n_res = uniq.size
            rank_order = np.argsort(first_pos, kind="stable")
            lid_of_rank = np.empty(n_res, dtype=np.int64)
            lid_of_rank[rank_order] = np.arange(n_res, dtype=np.int64)
            flat_local = lid_of_rank[inverse]
            remaining = kernel.res_capacity[uniq[rank_order]].copy()
            counts = np.bincount(flat_local, minlength=n_res)
            res_alive = np.ones(n_res, dtype=bool)
            flow_of_pos = np.repeat(np.arange(n_flows, dtype=np.int64), lens)
            indptr = np.zeros(n_flows + 1, dtype=np.int64)
            np.cumsum(lens, out=indptr[1:])
            # Transpose: per-resource member lists in comp (discovery)
            # order — matching ``users[res]`` insertion order.
            t_perm = np.argsort(flat_local, kind="stable")
            t_flow = flow_of_pos[t_perm]
            t_indptr = np.zeros(n_res + 1, dtype=np.int64)
            np.cumsum(np.bincount(flat_local, minlength=n_res), out=t_indptr[1:])
            unfixed = ~zero_res
            n_unfixed = int(unfixed.sum())
            while n_unfixed:
                alive_ids = np.flatnonzero(res_alive)
                rem_alive = remaining[alive_ids]
                shares = np.where(
                    rem_alive > 0.0, rem_alive / counts[alive_ids], 0.0
                )
                pick = _fold_argmin(shares)
                if pick < 0:  # pragma: no cover - defensive; every
                    # unfixed flow sits in a live member list.
                    left = np.flatnonzero(unfixed)
                    rates[left] = _INF
                    order_parts.append(left)
                    break
                bottleneck = int(alive_ids[pick])
                best_share = float(shares[pick])
                members = t_flow[t_indptr[bottleneck] : t_indptr[bottleneck + 1]]
                frozen = members[unfixed[members]]
                rates[frozen] = best_share
                unfixed[frozen] = False
                n_unfixed -= int(frozen.size)
                order_parts.append(frozen)
                res_alive[bottleneck] = False
                frozen_rows = _gather(flat_local, indptr[frozen], lens[frozen])
                removed = np.bincount(frozen_rows, minlength=n_res)
                removed[bottleneck] = 0
                touched = res_alive & (removed > 0)
                counts[touched] -= removed[touched]
                remaining[touched] -= best_share * removed[touched]
                res_alive[touched & (counts == 0)] = False
        order = (
            np.concatenate(order_parts) if len(order_parts) > 1 else order_parts[0]
        )
        return rates, order


class ColumnarFlowScheduler(FlowScheduler):
    """FlowScheduler whose hot path runs on :class:`FlowKernel` arrays.

    Drop-in replacement: same public surface, byte-identical completion
    times, rates and same-instant completion ordering as the dict-backed
    scheduler (enforced by the equivalence battery). Settle, re-rate and
    ETA-index maintenance are batch numpy operations; each completion
    event drains *all* due flows in one vectorised pass. The remaining
    per-flow Python work — one attach, one detach, one completion
    callback per flow lifetime — is what ``py_flow_ops`` counts.
    """

    def __init__(
        self,
        sim: Simulator,
        allocator: ColumnarRateAllocator | None = None,
        kernel: FlowKernel | None = None,
    ) -> None:
        if allocator is None:
            allocator = ColumnarRateAllocator(kernel)
        elif kernel is not None and allocator.kernel is not kernel:
            raise SimulationError("allocator is bound to a different kernel")
        super().__init__(sim, allocator)
        self.kernel: FlowKernel = allocator.kernel

    # -- overrides: per-flow ops become batch kernel ops --------------------

    def settle_now(self) -> None:
        """Flush in-flight progress (one vectorised settle of all slots)."""
        kernel = self.kernel
        if kernel.hi:
            kernel.settle(np.flatnonzero(kernel.alive[: kernel.hi]), self.sim.now)

    def _settle_flow(self, flow: Flow) -> None:
        self.py_flow_ops += 1
        if flow._kernel is self.kernel:
            self.kernel.settle(
                np.array([flow._slot], dtype=np.int64), self.sim.now
            )

    def _do_recompute(self) -> None:
        self._recompute_event = None
        registry = get_registry()
        wall_start = time.perf_counter() if registry.enabled else 0.0
        kernel = self.kernel
        now = self.sim.now

        def presettle(slots: np.ndarray) -> None:
            kernel.settle(slots, now)

        changed = self.allocator.recompute_slots(presettle)
        if changed.size:
            rate = kernel.rate[changed]
            positive = rate > 0.0
            moving = changed[positive]
            if moving.size:
                eta_new = now + kernel.remaining[moving] / kernel.rate[moving]
                old = kernel.eta[moving]
                fresh = ~((old != _INF) & (np.abs(eta_new - old) <= _EPSILON_TIME))
                stamped = moving[fresh]
                if stamped.size:
                    kernel.eta[stamped] = eta_new[fresh]
                    kernel.eta_seq[stamped] = kernel.next_eta_seqs(
                        int(stamped.size)
                    )
            kernel.eta[changed[~positive]] = _INF
        touched = int(changed.size)
        if registry.enabled:
            registry.counter("alloc.passes").inc()
            registry.counter("alloc.flows_touched").inc(touched)
            registry.histogram("alloc.component_size").observe(touched)
            registry.histogram("alloc.duration_s").observe(
                time.perf_counter() - wall_start
            )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "flows.rebalanced",
                track="flows",
                active=len(self.active),
                touched=touched,
            )
        self._sync_completion_event()

    def _earliest_eta(self) -> float | None:
        earliest = self.kernel.min_eta()
        return None if earliest == _INF else earliest

    def _on_completion_event(self) -> None:
        self._completion_event = None
        now = self.sim.now
        kernel = self.kernel
        due = kernel.due_slots(now + _EPSILON_TIME)
        finished: list[Flow] = []
        if due.size:
            kernel.settle(due, now)
            remaining = kernel.remaining[due]
            rate = kernel.rate[due]
            done = (remaining <= _EPSILON_BYTES) | (
                (rate > 0.0) & (remaining <= rate * _EPSILON_TIME)
            )
            drifting = due[~done & (rate > 0.0)]
            if drifting.size:
                # Float drift left unfinished bytes; re-index the flows.
                kernel.eta[drifting] = (
                    now + kernel.remaining[drifting] / kernel.rate[drifting]
                )
                kernel.eta_seq[drifting] = kernel.next_eta_seqs(int(drifting.size))
            stalled = due[~done & (rate <= 0.0)]
            if stalled.size:  # pragma: no cover - defensive; a due entry
                # implies the rate it was computed with is still in force.
                kernel.eta[stalled] = _INF
            finished = [kernel.flows[int(slot)] for slot in due[done]]
        for flow in finished:
            self.py_flow_ops += 1
            self.active.pop(flow, None)
            self.allocator.remove_flow(flow)
            flow._eta = None
        for flow in finished:
            self.py_flow_ops += 1
            self._complete_flow(flow)
        if finished:
            self._request_recompute()
        self._sync_completion_event()
