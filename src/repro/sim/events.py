"""Event queue primitives for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordered by (time, seq) for determinism."""

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A min-heap of events with stable FIFO ordering at equal timestamps."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        event = Event(time=time, seq=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Pop the earliest live event, or None if the queue is drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the earliest live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
