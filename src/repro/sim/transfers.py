"""Sliced, pipelined transfers built on top of fluid flows.

The paper (Section V-A) splits every chunk into fixed-size slices and
pipelines storage and network I/O for *all* repair algorithms. A
:class:`Transfer` models one chunk-sized movement between two endpoints
as an ordered sequence of slice flows; slice ``j`` may start only after

* slice ``j - 1`` of the same transfer finished (in-order delivery), and
* slice ``j`` of every dependency transfer finished (relay semantics:
  a relay can forward slice ``j`` of its partial result only once it has
  received slice ``j`` from each input).

This reproduces ECPipe's O(1) pipelining, PPR's tree stages, and the
slice-level behaviour of ChameleonEC's tunable plans.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable

from repro.errors import SimulationError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.sim.flows import Flow, FlowScheduler
from repro.sim.resources import Resource

_transfer_ids = itertools.count()


class Transfer:
    """A sliced data movement with cross-transfer pipelining dependencies."""

    def __init__(
        self,
        name: str,
        resources: tuple[Resource, ...],
        size: float,
        slice_size: float,
        tag: str = "default",
    ) -> None:
        if size <= 0:
            raise SimulationError(f"transfer {name!r} needs positive size")
        if slice_size <= 0:
            raise SimulationError(f"transfer {name!r} needs positive slice size")
        self.id = next(_transfer_ids)
        self.name = name
        self.resources = tuple(resources)
        self.size = float(size)
        self.tag = tag
        self.num_slices = max(1, math.ceil(size / slice_size))
        base = size / self.num_slices
        self.slice_sizes = [base] * self.num_slices
        self.deps: list[Transfer] = []
        self.dependents: list[Transfer] = []
        self.completed_slices = 0
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.cancelled = False
        self.failed = False
        self.failure_reason: str | None = None
        self.paused = False
        self.stalled = False
        self.released = False
        # Endpoint node ids, set by ``Cluster.make_transfer``. Transfers
        # built without endpoints (e.g. a local disk write) are never
        # subject to reachability checks.
        self.src: int | None = None
        self.dst: int | None = None
        self.on_complete: list[Callable[[Transfer], None]] = []
        self.on_failed: list[Callable[[Transfer, str], None]] = []
        self.on_slice: list[Callable[[Transfer, int], None]] = []
        self._manager: TransferManager | None = None
        self._inflight: Flow | None = None
        self._obs_span = None

    def depends_on(self, other: Transfer) -> Transfer:
        """Declare a slice-wise pipeline dependency on ``other``."""
        if other is self:
            raise SimulationError("a transfer cannot depend on itself")
        self.deps.append(other)
        other.dependents.append(self)
        return self

    @property
    def done(self) -> bool:
        """True once every slice completed."""
        return self.completed_at is not None

    @property
    def bytes_completed(self) -> float:
        """Bytes of fully delivered slices."""
        return sum(self.slice_sizes[: self.completed_slices])

    @property
    def active(self) -> bool:
        """Released, unfinished, and not cancelled."""
        return self.released and not self.done and not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"<Transfer {self.name} {self.completed_slices}/{self.num_slices} slices>"
        )


class TransferManager:
    """Launches slice flows respecting pipeline dependencies."""

    def __init__(self, scheduler: FlowScheduler) -> None:
        self.scheduler = scheduler
        # Live = released but neither finished nor cancelled/failed. The
        # fault subsystem consults this registry to find the transfers a
        # node crash tears down or a flow interruption may hit.
        self._live: dict[int, Transfer] = {}
        # Reachability oracle installed by the cluster only while a
        # network partition is active (None = fully connected, keeping
        # the per-slice launch path free of overhead). Takes two node
        # ids and returns whether traffic may flow between them.
        self.reachability: Callable[[int, int], bool] | None = None
        # Transfers parked because their endpoints straddle a partition
        # cut, keyed by id for deterministic heal-time release order.
        self._stalled: dict[int, Transfer] = {}

    def live_transfers(self, tag: str | None = None) -> list[Transfer]:
        """Live transfers (optionally one traffic tag), ordered by id.

        The id ordering makes consumers deterministic: a seeded fault
        timeline picking a victim always sees the same candidate list.
        """
        return [
            t
            for _id, t in sorted(self._live.items())
            if tag is None or t.tag == tag
        ]

    def start(self, transfer: Transfer) -> None:
        """Release a transfer; slices launch as dependencies permit."""
        if transfer.cancelled:
            raise SimulationError(f"cannot start cancelled transfer {transfer.name!r}")
        if transfer.released:
            return
        transfer._manager = self
        transfer.released = True
        self._live[transfer.id] = transfer
        transfer.started_at = self.scheduler.sim.now
        tracer = get_tracer()
        if tracer.enabled:
            transfer._obs_span = tracer.span(
                "transfer",
                track="tasks",
                task=transfer.name,
                task_id=transfer.id,
                size=transfer.size,
                slices=transfer.num_slices,
                tag=transfer.tag,
            )
        self._try_launch(transfer)

    def pause(self, transfer: Transfer) -> None:
        """Stop launching further slices (the in-flight slice completes).

        Only a live released transfer can pause: calls on transfers that
        are done, cancelled, not yet started, or already paused are
        no-ops (no state flip, no ``transfer.paused`` trace event).
        """
        if transfer.paused or not transfer.active:
            return
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "transfer.paused",
                track="tasks",
                task=transfer.name,
                task_id=transfer.id,
                completed_slices=transfer.completed_slices,
            )
        transfer.paused = True

    def resume(self, transfer: Transfer) -> None:
        """Continue a paused transfer.

        Like :meth:`pause`, a no-op unless the transfer is live and
        released — resuming a transfer that finished or was cancelled
        while parked must not emit a spurious trace event.
        """
        if not transfer.paused or not transfer.active:
            return
        transfer.paused = False
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "transfer.resumed",
                track="tasks",
                task=transfer.name,
                task_id=transfer.id,
            )
        self._try_launch(transfer)

    def stall(self, transfer: Transfer) -> None:
        """Park a live transfer whose endpoints straddle a partition cut.

        The in-flight slice is dropped (its packets are blackholed, so
        the whole slice is re-sent after the cut heals) and no further
        slices launch until :meth:`unstall_all` releases the transfer.
        Unlike :meth:`pause`, stalling is involuntary: Chameleon's phase
        machinery resumes *paused* transfers freely, but a stalled one
        stays parked until connectivity returns. No-op unless live.
        """
        if transfer.stalled or not transfer.active:
            return
        transfer.stalled = True
        self._stalled[transfer.id] = transfer
        if transfer._inflight is not None:
            self.scheduler.cancel_flow(transfer._inflight)
            transfer._inflight = None
        registry = get_registry()
        if registry.enabled:
            registry.counter("transfers.stalled").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "transfer.stalled",
                track="tasks",
                task=transfer.name,
                task_id=transfer.id,
                completed_slices=transfer.completed_slices,
            )

    def unstall_all(self) -> list[Transfer]:
        """Release every stalled transfer, in id order.

        Each released transfer immediately re-checks reachability in
        ``_try_launch``, so under overlapping partitions a transfer that
        is still cut off simply parks again. Returns the transfers that
        were released (whether or not they re-stalled).
        """
        released = []
        for _id, transfer in sorted(self._stalled.items()):
            transfer.stalled = False
            released.append(transfer)
        self._stalled.clear()
        tracer = get_tracer()
        for transfer in released:
            if tracer.enabled:
                tracer.instant(
                    "transfer.unstalled",
                    track="tasks",
                    task=transfer.name,
                    task_id=transfer.id,
                )
            if transfer.active:
                self._try_launch(transfer)
        return released

    def cancel(self, transfer: Transfer) -> None:
        """Abort the transfer: in-flight slice is dropped, no callbacks fire.

        Idempotent; cancelling a finished transfer is a no-op (dependents
        were already woken exactly once by its completed slices).
        """
        if transfer.done or transfer.cancelled:
            return
        transfer.cancelled = True
        self._live.pop(transfer.id, None)
        self._stalled.pop(transfer.id, None)
        if transfer._obs_span is not None:
            transfer._obs_span.finish(status="cancelled")
            transfer._obs_span = None
        if transfer._inflight is not None:
            self.scheduler.cancel_flow(transfer._inflight)
            transfer._inflight = None
        # Dependents blocked on this transfer's remaining slices may now run.
        for dependent in transfer.dependents:
            if dependent.released:
                self._try_launch(dependent)

    def fail(self, transfer: Transfer, reason: str = "failed") -> None:
        """Abort the transfer *as a fault*: cancel it, then fire ``on_failed``.

        Unlike :meth:`cancel` (a deliberate scheduling decision, silent to
        the owner), a failure notifies the transfer's owner so recovery
        machinery can retry or re-plan. Idempotent; failing a finished or
        already-cancelled transfer is a no-op.
        """
        if transfer.done or transfer.cancelled:
            return
        transfer.failed = True
        transfer.failure_reason = reason
        if transfer._obs_span is not None:
            transfer._obs_span.finish(status="failed", reason=reason)
            transfer._obs_span = None
        self.cancel(transfer)
        registry = get_registry()
        if registry.enabled:
            registry.counter("transfers.failed").inc()
        for callback in list(transfer.on_failed):
            callback(transfer, reason)

    def fail_crossing(
        self,
        resources: tuple[Resource, ...] | list[Resource],
        reason: str,
        *,
        tag: str | None = None,
    ) -> list[Transfer]:
        """Fail every live transfer routed through any of ``resources``.

        Used by the fault subsystem when a node crashes: all in-flight
        (optionally tag-filtered) movements touching the node's links or
        disks are torn down, and their owners are notified via
        ``on_failed``. Returns the failed transfers.
        """
        wanted = set(id(r) for r in resources)
        victims = [
            t
            for t in self.live_transfers(tag)
            if any(id(r) in wanted for r in t.resources)
        ]
        for transfer in victims:
            self.fail(transfer, reason)
        return victims

    # -- internals -----------------------------------------------------------

    def _deps_ready(self, transfer: Transfer, slice_idx: int) -> bool:
        for dep in transfer.deps:
            if dep.cancelled:
                # A cancelled dependency no longer gates this transfer
                # (re-tuning removes inputs and redirects them elsewhere).
                continue
            # Proportional gating: finishing slice j of this transfer
            # requires the corresponding fraction of every input, so the
            # last slice always waits for the whole dependency (a relay
            # cannot emit its final combined bytes before receiving all
            # inputs, whatever the relative sizes).
            fraction = (slice_idx + 1) / transfer.num_slices
            needed = math.ceil(fraction * dep.num_slices - 1e-9)
            if dep.completed_slices < min(needed, dep.num_slices):
                return False
        return True

    def _unreachable(self, transfer: Transfer) -> bool:
        return (
            self.reachability is not None
            and transfer.src is not None
            and transfer.dst is not None
            and not self.reachability(transfer.src, transfer.dst)
        )

    def _try_launch(self, transfer: Transfer) -> None:
        if (
            not transfer.active
            or transfer.paused
            or transfer.stalled
            or transfer._inflight is not None
        ):
            return
        idx = transfer.completed_slices
        if idx >= transfer.num_slices:
            return
        if not self._deps_ready(transfer, idx):
            return
        if self._unreachable(transfer):
            # A new cross-cut slice is refused at the source: the
            # transfer parks until the partition heals.
            self.stall(transfer)
            return
        flow = Flow(
            name=f"{transfer.name}[{idx}]",
            size=transfer.slice_sizes[idx],
            resources=transfer.resources,
            tag=transfer.tag,
        )
        flow.on_complete.append(lambda _f, t=transfer, i=idx: self._slice_done(t, i))
        transfer._inflight = flow
        self.scheduler.start_flow(flow)

    def _slice_done(self, transfer: Transfer, idx: int) -> None:
        transfer._inflight = None
        if transfer.cancelled:
            return
        transfer.completed_slices = idx + 1
        for callback in list(transfer.on_slice):
            callback(transfer, idx)
        # Wake dependents that were waiting on this slice.
        for dependent in transfer.dependents:
            if dependent.released:
                self._try_launch(dependent)
        if transfer.completed_slices >= transfer.num_slices:
            transfer.completed_at = self.scheduler.sim.now
            self._live.pop(transfer.id, None)
            if transfer._obs_span is not None:
                transfer._obs_span.finish()
                transfer._obs_span = None
            registry = get_registry()
            if registry.enabled:
                registry.counter("transfers.completed").inc()
                if transfer.started_at is not None:
                    registry.histogram("transfer.duration_s").observe(
                        transfer.completed_at - transfer.started_at
                    )
            for callback in list(transfer.on_complete):
                callback(transfer)
        else:
            self._try_launch(transfer)
