#!/usr/bin/env python3
"""Quickstart: encode a stripe, lose a node, repair it with ChameleonEC.

Walks the stable ``repro`` facade in one sitting:

1. build an RS(10,4)-coded testbed of 20 nodes with the fluent builder,
2. replay YCSB-A foreground traffic from 4 clients,
3. fail a node and repair its chunks with ChameleonEC,
4. verify (over real bytes) that a ChameleonEC plan decodes correctly,
5. print repair throughput and foreground tail latency.
"""

import numpy as np

from repro import Testbed, execute_plan
from repro.core import TaskDispatcher, build_plan


def main() -> None:
    # --- 1. the testbed: cluster + coded stripes + monitor ------------------
    testbed = (
        Testbed.builder()
        .with_code("rs-10-4")
        .with_nodes(20)
        .with_clients(4)
        .with_trace("ycsb-a")
        .with_chunks(20)
        .with_options(chunk_mb=16.0, slice_mb=1.0, t_phase=5.0)
        .with_seed(7)
        .build()
    )
    code = testbed.code
    print(f"cluster: 20 nodes, {len(testbed.store)} stripes of {code.name}")

    # --- 2. foreground traffic ---------------------------------------------
    testbed.start_foreground()
    testbed.cluster.sim.run(until=5.0)  # warm the bandwidth monitor

    # --- 3. fail a node and repair it ---------------------------------------
    report = testbed.fail_nodes(1)
    print(f"node 0 failed: {len(report.failed_chunks)} chunks to repair")
    chameleon = testbed.make_repairer("ChameleonEC")
    chameleon.repair(report.failed_chunks)
    testbed.run_until(lambda: chameleon.done, step=2.0)
    testbed.stop_foreground()

    # --- 4. prove a dispatched plan decodes real bytes ----------------------
    rng = np.random.default_rng(42)
    data = [rng.integers(0, 256, 4096, dtype=np.uint8) for _ in range(code.k)]
    stripe_bytes = code.encode(data)
    dispatcher = TaskDispatcher(
        testbed.injector, testbed.monitor, chunk_size=testbed.config.chunk_size
    )
    dispatcher.begin_phase()
    chunk = report.failed_chunks[0]
    # The chunk was already repaired; rebuild a plan for demonstration by
    # pretending it failed again on its new home.
    dispatch = dispatcher.dispatch_chunk(chunk, code)
    plan = build_plan(dispatch, code, testbed.injector)
    repaired = execute_plan(
        plan, {s.chunk_index: stripe_bytes[s.chunk_index] for s in plan.sources}
    )
    assert np.array_equal(repaired, stripe_bytes[chunk.index])
    print(f"plan for {chunk} decodes correctly "
          f"({len(plan.relays())} relays, {len(plan.edges())} transmissions)")

    # --- 5. results ----------------------------------------------------------
    latency = testbed.latency
    print(f"repair throughput : {chameleon.meter.throughput / 1e6:8.1f} MB/s")
    print(f"repair time       : {chameleon.meter.elapsed:8.2f} s "
          f"({chameleon.phase_index} phase(s))")
    print(f"foreground P99    : {latency.p99 * 1000:8.2f} ms "
          f"over {latency.count} requests")


if __name__ == "__main__":
    main()
