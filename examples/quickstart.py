#!/usr/bin/env python3
"""Quickstart: encode a stripe, lose a node, repair it with ChameleonEC.

Walks the full public API surface in one sitting:

1. build an RS(10,4)-coded cluster of 20 nodes,
2. replay YCSB-A foreground traffic from 4 clients,
3. fail a node and repair its chunks with ChameleonEC,
4. verify (over real bytes) that a ChameleonEC plan decodes correctly,
5. print repair throughput and foreground tail latency.
"""

import numpy as np

from repro import (
    MB,
    BandwidthMonitor,
    ChameleonRepair,
    Cluster,
    FailureInjector,
    RSCode,
    execute_plan,
    place_stripes,
)
from repro.core import TaskDispatcher, build_plan
from repro.experiments import run_sim_until
from repro.traffic import KeyRouter, launch_clients, ycsb_a


def main() -> None:
    # --- 1. the cluster and the coded data ---------------------------------
    code = RSCode(10, 4)
    cluster = Cluster(num_nodes=20, num_clients=4)
    store = place_stripes(code, 60, cluster.storage_ids, chunk_size=16 * MB, seed=7)
    injector = FailureInjector(cluster, store)
    print(f"cluster: 20 nodes, {len(store)} stripes of {code.name}")

    # --- 2. foreground traffic ---------------------------------------------
    router = KeyRouter(store, cluster)
    clients, latency = launch_clients(
        cluster,
        lambda i: ycsb_a(seed=100 + i),
        router,
        requests_per_client=None,  # run until we stop them
    )
    monitor = BandwidthMonitor(cluster, window=2.0)
    monitor.start()
    cluster.sim.run(until=5.0)  # warm the bandwidth monitor

    # --- 3. fail a node and repair it ---------------------------------------
    report = injector.fail_nodes([0])
    print(f"node 0 failed: {len(report.failed_chunks)} chunks to repair")
    chameleon = ChameleonRepair(
        cluster, store, injector, monitor,
        chunk_size=16 * MB, slice_size=1 * MB, t_phase=5.0,
    )
    chameleon.repair(report.failed_chunks)
    run_sim_until(cluster, lambda: chameleon.done, step=2.0)
    for client in clients:
        client.stop()

    # --- 4. prove a dispatched plan decodes real bytes ----------------------
    rng = np.random.default_rng(42)
    data = [rng.integers(0, 256, 4096, dtype=np.uint8) for _ in range(code.k)]
    stripe_bytes = code.encode(data)
    dispatcher = TaskDispatcher(injector, monitor, chunk_size=16 * MB)
    dispatcher.begin_phase()
    chunk = report.failed_chunks[0]
    # The chunk was already repaired; rebuild a plan for demonstration by
    # pretending it failed again on its new home.
    dispatch = dispatcher.dispatch_chunk(chunk, code)
    plan = build_plan(dispatch, code, injector)
    repaired = execute_plan(
        plan, {s.chunk_index: stripe_bytes[s.chunk_index] for s in plan.sources}
    )
    assert np.array_equal(repaired, stripe_bytes[chunk.index])
    print(f"plan for {chunk} decodes correctly "
          f"({len(plan.relays())} relays, {len(plan.edges())} transmissions)")

    # --- 5. results ----------------------------------------------------------
    print(f"repair throughput : {chameleon.meter.throughput / 1e6:8.1f} MB/s")
    print(f"repair time       : {chameleon.meter.elapsed:8.2f} s "
          f"({chameleon.phase_index} phase(s))")
    print(f"foreground P99    : {latency.p99 * 1000:8.2f} ms "
          f"over {latency.count} requests")


if __name__ == "__main__":
    main()
