#!/usr/bin/env python3
"""Erasure-code comparison: RS vs LRC vs Butterfly repair (Exp#9 flavour).

Shows the coding layer end-to-end for three code families:

* correctness — encode random data, drop chunks, decode, compare bytes;
* repair cost — traffic (in chunk units) each code needs per repair;
* repair speed — simulated full-node repair throughput with ChameleonEC.
"""

import numpy as np

from repro import ButterflyCode, LRCCode, RSCode, Testbed, make_code
from repro.experiments import format_table, run_repair_experiment


def correctness_demo() -> None:
    rng = np.random.default_rng(1)
    print("correctness (encode -> lose chunks -> decode):")
    for code in (RSCode(10, 4), LRCCode(10, 2, 2), ButterflyCode()):
        data = [rng.integers(0, 256, 1024, dtype=np.uint8) for _ in range(code.k)]
        stripe = code.encode(data)
        lost = min(code.fault_tolerance(), 2)
        available = {i: stripe[i] for i in range(lost, code.n)}
        decoded = code.decode(available)
        ok = all(np.array_equal(decoded[i], stripe[i]) for i in range(code.n))
        print(f"  {code.name:14s} lost {lost} chunks -> decode {'OK' if ok else 'FAIL'}")


def repair_cost_demo() -> None:
    print("\nsingle-chunk repair traffic (chunk units):")
    for spec in ("RS(10,4)", "LRC(10,2,2)", "Butterfly(4,2)"):
        code = make_code(spec)
        eq = code.repair_equation(0)
        print(f"  {code.name:14s} reads {len(eq.sources)} sources, "
              f"traffic = {eq.traffic_chunks:g} chunks")


def throughput_demo(scale: float = 0.05) -> None:
    rows = []
    for spec in ("RS(10,4)", "LRC(10,2,2)", "Butterfly(4,2)"):
        config = Testbed.builder().scaled(scale).with_code(spec).config()
        result = run_repair_experiment(
            config, "ChameleonEC", scenario=Testbed.build(config)
        )
        rows.append([spec, result.throughput_mbs])
    print()
    print(format_table("ChameleonEC full-node repair", ["code", "MB/s"], rows))


def main() -> None:
    correctness_demo()
    repair_cost_demo()
    throughput_demo()


if __name__ == "__main__":
    main()
