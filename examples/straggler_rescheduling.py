#!/usr/bin/env python3
"""Straggler handling (Section III-A + III-C / Exp#11).

Saturates one node's uplink with a Redis-style hog (24 reader threads
pulling 1 MB objects), then repairs a failed node with:

* CR / PPR / ECPipe — random source selection, no awareness of the hog;
* ChameleonEC      — idle-bandwidth dispatch steers tasks around the
                     hogged node, and straggler-aware re-scheduling
                     (re-ordering + re-tuning) handles tasks that still
                     land on it.

Two timings are shown: the hog active *before* dispatch (ChameleonEC's
monitor sees it and avoids the node) and the hog arriving *mid-repair*
(only re-scheduling can react).
"""

from repro import Testbed
from repro.experiments.exp11_breakdown import StragglerLoad

ALGORITHMS = ("CR", "PPR", "ECPipe", "ETRP", "ChameleonEC")


def run_one(algorithm: str, hog_delay: float, scale: float = 0.08) -> str:
    testbed = Testbed.builder().scaled(scale).build()
    testbed.start_foreground()
    hog = StragglerLoad(testbed.cluster, node_id=1, threads=24, mode="read")
    testbed.cluster.sim.run(until=3.0)
    if hog_delay <= 0:
        hog.start()  # hog active before the repair is even planned
    testbed.cluster.sim.run(until=6.0)
    report = testbed.fail_nodes(1)
    repairer = testbed.make_repairer(algorithm)
    repairer.repair(report.failed_chunks)
    if hog_delay > 0:
        testbed.cluster.sim.schedule(hog_delay, hog.start)
    testbed.run_until(lambda: repairer.done, step=0.5)
    hog.stop()
    testbed.stop_foreground()
    line = f"  {algorithm:12s} {repairer.meter.throughput / 1e6:7.1f} MB/s"
    if hasattr(repairer, "reorders"):
        line += (
            f"   (re-orders={repairer.reorders}, re-tunes={repairer.retunes},"
            f" re-plans={repairer.replans})"
        )
    return line


def main() -> None:
    print("hog active BEFORE dispatch (idle-bandwidth dispatch avoids it):")
    for algorithm in ALGORITHMS:
        print(run_one(algorithm, hog_delay=0.0))
    print("\nhog arrives MID-REPAIR (re-scheduling reacts):")
    for algorithm in ALGORITHMS:
        print(run_one(algorithm, hog_delay=0.3))


if __name__ == "__main__":
    main()
