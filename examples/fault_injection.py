#!/usr/bin/env python3
"""Fault injection: a repair that survives crashes and stragglers.

Builds a testbed, starts a full-node repair, then a seeded
:class:`repro.FaultTimeline` injects runtime faults *mid-repair*:

* a helper node crashes (its in-flight repair transfers fail, its
  chunks join the repair batch, affected chunks are retried);
* another node straggles for a few seconds (bandwidth at 10%);
* one in-flight repair flow is interrupted outright.

The run completes with zero lost chunks; every retry and re-plan is
visible through the hook events printed below.
"""

from repro import FaultTimeline, Testbed


def main() -> None:
    testbed = (
        Testbed.builder()
        .with_code("rs-6-3")
        .with_nodes(16)
        .with_trace("ycsb-a")
        .with_chunks(12)
        .with_seed(5)
        .build()
    )
    testbed.start_foreground()
    testbed.cluster.sim.run(until=3.0)

    report = testbed.fail_nodes(1)
    print(f"node 0 failed: {len(report.failed_chunks)} chunks to repair")
    repairer = testbed.make_repairer("ChameleonEC", chunk_timeout=60.0)
    repairer.on("chunk_failed", lambda r, chunk, reason:
                print(f"  [fault] chunk {chunk} failed: {reason}"))
    repairer.on("retry", lambda r, chunk, attempt:
                print(f"  [recover] retrying {chunk} (attempt {attempt})"))
    repairer.on("chunks_added", lambda r, chunks:
                print(f"  [recover] adopted {len(chunks)} chunks from the crash"))

    timeline = (
        FaultTimeline(seed=7)
        .crash(2.0, node_id=5)          # a helper dies mid-repair
        .straggler(4.0, node_id=9, duration=3.0, severity=0.1)
        .interrupt_flow(6.0)
    )
    timeline.on("node_crashed", lambda t, node_id, report, failed_transfers:
                print(f"  [fault] node {node_id} crashed "
                      f"({len(failed_transfers)} transfers killed)"))
    testbed.install_faults(timeline)

    repairer.repair(report.failed_chunks)
    testbed.run_until(lambda: repairer.done)
    testbed.stop_foreground()

    print(f"repaired {len(repairer.completed)} chunks "
          f"({repairer.retries} retries, {len(repairer.lost)} lost) "
          f"in {repairer.meter.elapsed:.1f} s")
    assert not repairer.lost, "tolerance was never exceeded"


if __name__ == "__main__":
    main()
