#!/usr/bin/env python3
"""Full-system demo: racked cluster, real payloads, recorded traces.

Exercises the extension surfaces on top of the paper's core:

1. a hierarchical cluster (4 racks, 3x oversubscribed core);
2. a chunk store holding real encoded payloads (the Redis role);
3. a trace recorded to CSV and replayed from the file;
4. ChameleonEC repairing a failed node while the trace replays —
   with every repaired chunk verified byte-for-byte at the end.
"""

import tempfile
from pathlib import Path

from repro import (
    MB,
    BandwidthMonitor,
    ChameleonRepair,
    Cluster,
    FailureInjector,
    RSCode,
    place_stripes,
)
from repro.cluster import drop_node_chunks, encode_and_load
from repro.experiments import run_sim_until
from repro.repair import DataPlane
from repro.traffic import FileTrace, KeyRouter, TraceClient, record_trace, ycsb_a


def main() -> None:
    # --- 1. a hierarchical cluster -------------------------------------------
    code = RSCode(10, 4)
    cluster = Cluster(
        num_nodes=20, num_clients=2, racks=4, oversubscription=3.0
    )
    store = place_stripes(code, 50, cluster.storage_ids, chunk_size=16 * MB, seed=11)
    injector = FailureInjector(cluster, store)
    print(f"cluster: 20 nodes in 4 racks (3x oversubscribed), {len(store)} "
          f"stripes of {code.name}")

    # --- 2. real payloads ------------------------------------------------------
    chunk_store = encode_and_load(store, payload_size=512, seed=12)
    print(f"chunk store: {len(chunk_store)} payloads encoded and loaded")

    # --- 3. a recorded trace, replayed from disk -------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "ycsb_a.csv"
        record_trace(ycsb_a(seed=13), 2_000, trace_path)
        print(f"trace: recorded 2000 YCSB-A requests to {trace_path.name}")
        router = KeyRouter(store, cluster)
        clients = []
        for i, node in enumerate(cluster.clients):
            client = TraceClient(
                cluster, node, FileTrace(trace_path), router,
                num_requests=None, slice_size=1 * MB,
            )
            clients.append(client)
            client.start()

        monitor = BandwidthMonitor(cluster, window=2.0)
        monitor.start()
        cluster.sim.run(until=5.0)

        # --- 4. fail, repair, verify -------------------------------------------
        report = injector.fail_nodes([0])
        lost = drop_node_chunks(chunk_store, store, 0)
        print(f"node 0 failed: {len(report.failed_chunks)} chunks, "
              f"{len(lost)} payloads dropped")
        chameleon = ChameleonRepair(
            cluster, store, injector, monitor,
            chunk_size=16 * MB, slice_size=1 * MB, t_phase=5.0,
        )
        plane = DataPlane(chunk_store, store)
        plane.attach(chameleon)
        chameleon.repair(report.failed_chunks)
        run_sim_until(cluster, lambda: chameleon.done, step=2.0)
        for client in clients:
            client.stop()

        plane.verify()
        print(f"repair: {chameleon.meter.throughput / 1e6:.1f} MB/s over "
              f"{chameleon.phase_index} phase(s); "
              f"{len(plane.repaired)} chunks restored, all byte-identical")
        p99 = clients[0].latency.p99 * 1000
        print(f"foreground: P99 {p99:.2f} ms across "
              f"{sum(c.issued for c in clients)} replayed requests")


if __name__ == "__main__":
    main()
