#!/usr/bin/env python3
"""Full-system demo: racked cluster, real payloads, recorded traces.

Exercises the extension surfaces on top of the paper's core:

1. a hierarchical cluster (4 racks, 3x oversubscribed core);
2. a chunk store holding real encoded payloads (the Redis role);
3. a trace recorded to CSV and replayed from the file;
4. ChameleonEC repairing a failed node while the trace replays —
   with every repaired chunk verified byte-for-byte at the end.
"""

import tempfile
from pathlib import Path

from repro import MB, Testbed
from repro.cluster import drop_node_chunks, encode_and_load
from repro.repair import DataPlane
from repro.traffic import FileTrace, TraceClient, record_trace, ycsb_a


def main() -> None:
    # --- 1. a hierarchical testbed -------------------------------------------
    testbed = (
        Testbed.builder()
        .with_code("rs-10-4")
        .with_nodes(20)
        .with_clients(2)
        .with_chunks(20)
        .with_seed(11)
        .with_options(chunk_mb=16.0, slice_mb=1.0, t_phase=5.0,
                      racks=4, oversubscription=3.0)
        .build()
    )
    cluster, store = testbed.cluster, testbed.store
    print(f"cluster: 20 nodes in 4 racks (3x oversubscribed), {len(store)} "
          f"stripes of {testbed.code.name}")

    # --- 2. real payloads ------------------------------------------------------
    chunk_store = encode_and_load(store, payload_size=512, seed=12)
    print(f"chunk store: {len(chunk_store)} payloads encoded and loaded")

    # --- 3. a recorded trace, replayed from disk -------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "ycsb_a.csv"
        record_trace(ycsb_a(seed=13), 2_000, trace_path)
        print(f"trace: recorded 2000 YCSB-A requests to {trace_path.name}")
        clients = []
        for node in cluster.clients:
            client = TraceClient(
                cluster, node, FileTrace(trace_path), testbed.router,
                num_requests=None, slice_size=1 * MB,
            )
            clients.append(client)
            client.start()
        cluster.sim.run(until=5.0)  # warm the bandwidth monitor

        # --- 4. fail, repair, verify -------------------------------------------
        report = testbed.injector.fail_nodes([0])
        lost = drop_node_chunks(chunk_store, store, 0)
        print(f"node 0 failed: {len(report.failed_chunks)} chunks, "
              f"{len(lost)} payloads dropped")
        chameleon = testbed.make_repairer("ChameleonEC")
        plane = DataPlane(chunk_store, store)
        plane.attach(chameleon)
        chameleon.repair(report.failed_chunks)
        testbed.run_until(lambda: chameleon.done, step=2.0)
        for client in clients:
            client.stop()

        plane.verify()
        print(f"repair: {chameleon.meter.throughput / 1e6:.1f} MB/s over "
              f"{chameleon.phase_index} phase(s); "
              f"{len(plane.repaired)} chunks restored, all byte-identical")
        p99 = clients[0].latency.p99 * 1000
        print(f"foreground: P99 {p99:.2f} ms across "
              f"{sum(c.issued for c in clients)} replayed requests")


if __name__ == "__main__":
    main()
