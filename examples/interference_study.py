#!/usr/bin/env python3
"""Interference study: repair algorithms racing real-world trace replays.

A miniature of the paper's Exp#1 (Fig. 12): CR, PPR, ECPipe, and
ChameleonEC each repair a failed node while clients replay one of the
four workload traces; the script prints repair throughput and the
foreground P99 latency for every (trace, algorithm) cell.

Usage:
    python examples/interference_study.py [scale]
"""

import sys

from repro import Testbed
from repro.experiments import format_table, run_repair_experiment

TRACES = ("ycsb-a", "ibm-os", "memcached", "facebook-etc")
ALGORITHMS = ("CR", "PPR", "ECPipe", "ChameleonEC")


def main(scale: float = 0.06) -> None:
    throughput_rows, p99_rows = [], []
    for slug in TRACES:
        config = Testbed.builder().scaled(scale).with_trace(slug).config()
        trace = config.trace
        tp_row, p99_row = [trace], [trace]
        for algorithm in ALGORITHMS:
            result = run_repair_experiment(
                config, algorithm, trace=trace, scenario=Testbed.build(config)
            )
            tp_row.append(result.throughput_mbs)
            p99_row.append(result.p99_latency * 1000)
        throughput_rows.append(tp_row)
        p99_rows.append(p99_row)
        print(f"  finished trace {trace}")

    headers = ["trace", *ALGORITHMS]
    print()
    print(format_table("Repair throughput (MB/s)", headers, throughput_rows))
    print()
    print(format_table("Foreground P99 latency (ms)", headers, p99_rows))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.06)
