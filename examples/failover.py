#!/usr/bin/env python3
"""Coordinator failover: crash the repair control plane, replay, resume.

Repairers, not just helpers, can die. With a journal enabled the
repairer write-ahead-logs every state transition (enqueue, plan chosen
with a fenced lease, reads issued, decode verified, write-back
committed), so a seeded :class:`repro.CoordinatorCrash` mid-repair is
recoverable: :meth:`Testbed.recover_repairer` replays the log,
reconciles it against the chunk store's actual bytes, and resumes a
fresh coordinator under a new epoch. Every chunk is repaired exactly
once — work committed before the crash is proven done by the log and
never re-executed — and the result is byte-identical to a crash-free
run.
"""

from repro import Testbed


def main() -> None:
    testbed = (
        Testbed.builder()
        .with_code("rs-6-3")
        .with_nodes(16)
        .with_trace("ycsb-a")
        .with_chunks(12)
        .with_seed(11)
        .with_integrity()       # real payloads: recovery reconciles bytes
        .with_journal()         # the durable control plane
        .build()
    )
    testbed.start_foreground()
    testbed.cluster.sim.run(until=2.0)

    report = testbed.fail_nodes(1)
    print(f"node failed: {len(report.failed_chunks)} chunks to repair")
    repairer = testbed.make_repairer("ChameleonEC")
    repairer.repair(report.failed_chunks)

    # Tear the coordinator down mid-repair (a crash-free run takes
    # ~0.9 s here): all its repair transfers die and every pending
    # timer becomes a no-op.
    testbed.inject_coordinator_crash(0.6)
    testbed.run_until(lambda: repairer.crashed, step=0.05)
    print(f"coordinator crashed at t={testbed.cluster.sim.now:.2f} s "
          f"with {len(repairer.completed)} chunks committed, "
          f"journal holds {len(testbed.journal)} records")

    # Failover: replay the journal, reconcile against stored bytes,
    # requeue only what is not provably done, resume under a new epoch.
    replacement = testbed.recover_repairer()
    print(f"recovery plan: {replacement.recovery.summary()}")
    testbed.run_until(lambda: replacement.done)
    testbed.stop_foreground()

    done_before = set(repairer.completed)
    done_after = set(replacement.completed)
    print(f"repaired {len(done_before)} before + {len(done_after)} after "
          f"the crash, {len(replacement.lost)} lost")
    assert done_before | done_after == set(report.failed_chunks)
    assert not done_before & done_after, "exactly-once: no double repair"
    for chunk in report.failed_chunks:
        assert testbed.chunk_store.verify(chunk), chunk
    print("every chunk repaired exactly once, byte-exact")


if __name__ == "__main__":
    main()
